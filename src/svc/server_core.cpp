#include "svc/server_core.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace padico::svc {

namespace {
/// Handle 0 stands for the listener in readiness queues and the wait set;
/// real slab handles are never 0 (generations start odd at 1).
constexpr std::uint64_t kListenerHandle = 0;

/// Edge-triggered mailbox hook of the sharded mode: every push/close on
/// the connection's receive mailbox enqueues the connection's slab handle
/// on its shard's readiness queue. At-least-once is enough — a duplicate
/// drains as kNeedMore, a stale handle (slot recycled) fails the slab
/// generation check. The shard queues are members of ServerCore and
/// outlive every mailbox: connections are freed in shutdown() before the
/// core is destroyed.
class ShardNotifier final : public osal::Waiter {
public:
    ShardNotifier(osal::BlockingQueue<std::uint64_t>& queue,
                  std::uint64_t handle)
        : queue_(&queue), handle_(handle) {}
    void notify() override { queue_->push(handle_); }

private:
    osal::BlockingQueue<std::uint64_t>* queue_;
    std::uint64_t handle_;
};
} // namespace

ServerCore::ServerCore(ptm::Runtime& rt, const std::string& endpoint,
                       ProtocolFactory factory, Options opts)
    : rt_(&rt), endpoint_(endpoint), factory_(std::move(factory)),
      opts_(std::move(opts)), start_(std::chrono::steady_clock::now()) {
    PADICO_CHECK(factory_ != nullptr, "ServerCore needs a protocol factory");
    PADICO_CHECK(opts_.workers > 0, "ServerCore needs at least one worker");
    listener_ = std::make_unique<ptm::VLinkListener>(rt, endpoint);
    if (opts_.mode == Mode::kEventDriven) {
        waitset_.add(listener_->mailbox(), kListenerHandle);
        dispatcher_ = osal::sched::spawn_thread([this] { dispatch_loop(); },
                                                "svc.dispatcher");
        osal::CheckedLock lk(pool_mu_);
        for (std::size_t i = 0; i < opts_.workers; ++i) pool_spawn_locked();
    } else if (opts_.mode == Mode::kShardedReadiness) {
        const std::size_t n = std::clamp<std::size_t>(
            opts_.readiness_shards, 1,
            static_cast<std::size_t>(lockrank::kServerConnShardMax));
        opts_.readiness_shards = n;
        shards_.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            auto sh = std::make_unique<Shard>();
            sh->mu.set_rank(lockrank::server_shard_rank(i),
                            "svc.server.shard");
            shards_.push_back(std::move(sh));
        }
        // Accepts are handled by shard 0; the listener mailbox feeds it
        // handle 0 on every pending-connection arrival.
        listener_->mailbox().set_waiter(std::make_shared<ShardNotifier>(
            shards_[0]->ready, kListenerHandle));
        for (std::size_t i = 0; i < n; ++i)
            shards_[i]->thread = osal::sched::spawn_thread(
                [this, i] { shard_loop(i); }, "svc.shard");
        osal::CheckedLock lk(pool_mu_);
        for (std::size_t i = 0; i < opts_.workers; ++i) pool_spawn_locked();
    } else {
        dispatcher_ = osal::sched::spawn_thread(
            [this] { legacy_accept_loop(); }, "svc.accept");
    }
    if (opts_.idle_timeout_ms > 0)
        sweeper_ = osal::sched::spawn_thread([this] { sweep_loop(); },
                                             "svc.sweeper");
    ingress_token_ = rt_->register_ingress(opts_.protocol, [this] {
        const Stats s = stats();
        ptm::TrafficCounters::Ingress in;
        in.accepted = s.accepted;
        in.closed = s.pruned;
        in.idle_reaped = s.idle_reaped;
        in.frames = s.frames;
        in.accept_batches = s.accept_batches;
        in.accept_batch_max = s.accept_batch_max;
        in.stale_events = s.stale_events;
        in.ready_queue_high_water = s.ready_queue_high_water;
        in.live_connections = s.live_connections;
        in.peak_threads = s.peak_threads;
        return in;
    });
}

ServerCore::~ServerCore() { shutdown(); }

void ServerCore::shutdown() {
    stopping_.store(true);
    osal::CheckedLock slk(shutdown_mu_);
    if (stopped_.load()) return;
    listener_->shutdown();
    // Detach the sharded accept notifier NOW: the listener outlives the
    // shard vector in ~ServerCore, and its mailbox closes again during
    // Demux unsubscribe — a retained ShardNotifier would push into a
    // destroyed shard queue.
    if (!shards_.empty()) listener_->mailbox().clear_waiter();
    waitset_.interrupt();
    for (auto& sh : shards_) sh->ready.close();
    if (dispatcher_.joinable()) osal::sched::join(dispatcher_);
    for (auto& sh : shards_)
        if (sh->thread.joinable()) osal::sched::join(sh->thread);
    if (sweeper_.joinable()) osal::sched::join(sweeper_);
    // Unblock anything still reading from clients that will never close
    // their end (legacy conn loops block in their private wait sets).
    for (const Handle h : slab_.live_handles()) {
        osal::CheckedLock lk(state_mu(h));
        Conn* conn = slab_.get(h);
        if (conn != nullptr && !conn->freeing) conn->link->abort();
    }
    work_.close();
    workers_.join_all();
    join_pool();
    // Release every remaining connection. The slot's VLink is destroyed by
    // free_conn OUTSIDE all svc locks: teardown posts FIN and unsubscribes
    // from the Demux — channel-layer work that must not run under them.
    // Event-mode readiness registrations are detached first so the wait
    // set never outlives a mailbox.
    for (const Handle h : slab_.live_handles()) {
        if (opts_.mode == Mode::kEventDriven) waitset_.remove(h);
        bool do_free = false;
        {
            osal::CheckedLock lk(state_mu(h));
            Conn* conn = slab_.get(h);
            do_free = conn != nullptr &&
                      claim_free_locked(*conn, /*force=*/true);
        }
        if (do_free) free_conn(h);
    }
    if (opts_.mode == Mode::kEventDriven) waitset_.remove(kListenerHandle);
    rt_->unregister_ingress(ingress_token_);
    stopped_.store(true);
}

ServerCore::Stats ServerCore::stats() const {
    Stats s;
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.pruned = pruned_.load(std::memory_order_relaxed);
    s.frames = frames_.load(std::memory_order_relaxed);
    s.idle_reaped = idle_reaped_.load(std::memory_order_relaxed);
    s.accept_batches = accept_batches_.load(std::memory_order_relaxed);
    s.accept_batch_max = accept_batch_max_.load(std::memory_order_relaxed);
    s.stale_events = stale_events_.load(std::memory_order_relaxed);
    for (const auto& sh : shards_)
        s.ready_queue_high_water =
            std::max(s.ready_queue_high_water,
                     sh->ready_high_water.load(std::memory_order_relaxed));
    s.threads = threads_live_.load(std::memory_order_relaxed);
    s.peak_threads = threads_peak_.load(std::memory_order_relaxed);
    s.live_connections = slab_.live();
    return s;
}

// ---------------------------------------------------------------------------
// Shared plumbing

std::uint64_t ServerCore::now_ms() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
}

ServerCore::Handle ServerCore::adopt(ptm::VLink&& link) {
    const Handle h = slab_.alloc();
    Conn* conn = slab_.get(h);
    PADICO_AUDIT(conn != nullptr, "freshly allocated slab handle is live");
    conn->link = std::make_shared<ptm::VLink>(std::move(link));
    conn->proto = factory_();
    const std::uint64_t now = now_ms();
    conn->last_activity_ms.store(now, std::memory_order_relaxed);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (opts_.idle_timeout_ms > 0)
        wheel_.schedule(now + opts_.idle_timeout_ms, h);
    return h;
}

bool ServerCore::claim_free_locked(Conn& conn, bool force) {
    if (conn.freeing) return false;
    if (!force && (!conn.closed || conn.busy || !conn.frames.empty()))
        return false;
    conn.freeing = true;
    return true;
}

void ServerCore::free_conn(Handle h) {
    Conn* conn = slab_.get(h);
    if (conn == nullptr) return;
    // Detach the readiness hook first: a stale handle left in a shard
    // queue is rejected by the generation check, but no NEW events should
    // fire while the slot is torn down.
    conn->link->rx_mailbox().clear_waiter();
    slab_.free(h); // destroys the Conn (and its VLink) outside svc locks
    pruned_.fetch_add(1, std::memory_order_relaxed);
}

/// Extract loop shared by the event dispatcher and the shard threads: the
/// calling thread is the connection's only driver, so try_extract runs
/// unlocked; the frames/busy/closed state flips under state_mu.
void ServerCore::drive_conn(Handle h) {
    Conn* conn;
    {
        osal::CheckedLock lk(state_mu(h));
        conn = slab_.get(h);
        if (conn == nullptr || conn->freeing) {
            // Slot recycled (or being released) between the readiness
            // event and this drain: the generation check rejected it.
            stale_events_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (conn->closed) return; // duplicate event on a draining stream
        // From here the pointer stays valid without the lock: closed is
        // only ever set by this thread, and no release can be claimed
        // while closed is false.
    }
    for (;;) {
        util::Message frame;
        Protocol::Extract st;
        try {
            st = conn->proto->try_extract(*conn->link, frame);
        } catch (const std::exception& e) {
            PLOG(warn, "svc") << endpoint_
                              << ": connection dropped: " << e.what();
            conn->link->abort();
            st = Protocol::Extract::kClosed;
        }
        if (st == Protocol::Extract::kFrame) {
            frames_.fetch_add(1, std::memory_order_relaxed);
            conn->last_activity_ms.store(now_ms(),
                                         std::memory_order_relaxed);
            osal::CheckedLock lk(state_mu(h));
            conn->frames.push_back(std::move(frame));
            if (!conn->busy) {
                conn->busy = true;
                work_.push(h);
            }
            continue;
        }
        if (st == Protocol::Extract::kNeedMore) break;
        // Closed: no further frames will ever be extracted. Deregister
        // first (so the closed mailbox stops reporting ready), then
        // release unless a worker still holds queued frames.
        if (opts_.mode == Mode::kEventDriven) waitset_.remove(h);
        bool do_free = false;
        {
            osal::CheckedLock lk(state_mu(h));
            conn->closed = true;
            do_free = claim_free_locked(*conn);
        }
        if (do_free) free_conn(h);
        break;
    }
}

/// Drain every queued connection request (one "batch" per listener wake),
/// then check whether the listener itself closed. Returns false once
/// accepting is over.
bool ServerCore::accept_batch() {
    std::uint64_t batch = 0;
    for (;;) {
        auto link = listener_->try_accept();
        if (!link.has_value()) break;
        ++batch;
        const Handle h = adopt(std::move(*link));
        Conn* conn = slab_.get(h);
        PADICO_AUDIT(conn != nullptr, "just-adopted slab handle is live");
        if (opts_.mode == Mode::kEventDriven) {
            waitset_.add(conn->link->rx_mailbox(), h);
        } else {
            conn->link->rx_mailbox().set_waiter(
                std::make_shared<ShardNotifier>(shard_of(h).ready, h));
        }
    }
    if (batch > 0) {
        accept_batches_.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t seen = accept_batch_max_.load(std::memory_order_relaxed);
        while (batch > seen &&
               !accept_batch_max_.compare_exchange_weak(seen, batch)) {
        }
    }
    if (listener_->closed()) {
        // A closed mailbox stays level-triggered ready, so in event mode
        // it must leave the wait set or the dispatcher would spin.
        if (opts_.mode == Mode::kEventDriven)
            waitset_.remove(kListenerHandle);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// Event-driven mode

void ServerCore::dispatch_loop() {
    fabric::Process::bind_to_thread(&rt_->process());
    ThreadTicket ticket(*this);
    bool accepting = true;
    while (!stopping_.load()) {
        const auto ready = waitset_.wait();
        if (stopping_.load()) break;
        for (const auto key : ready) {
            if (key == kListenerHandle) {
                if (accepting) accepting = accept_batch();
            } else {
                drive_conn(key);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded-readiness mode: shard i drains its own edge-triggered handle
// queue; a connection belongs to shard (slot index % shards) for life, so
// exactly one shard thread ever drives it. Shard 0 additionally owns the
// accept path. A wake costs O(1) in the number of live connections — this
// is what lets one core hold 100k+ of them (bench_ingress).

void ServerCore::shard_loop(std::size_t shard) {
    fabric::Process::bind_to_thread(&rt_->process());
    ThreadTicket ticket(*this);
    Shard& sh = *shards_[shard];
    bool accepting = (shard == 0);
    for (;;) {
        const std::uint64_t depth = sh.ready.size();
        if (depth > sh.ready_high_water.load(std::memory_order_relaxed))
            sh.ready_high_water.store(depth, std::memory_order_relaxed);
        auto ev = sh.ready.pop();
        if (!ev.has_value()) return; // queue closed: shutting down
        if (*ev == kListenerHandle) {
            if (accepting && !stopping_.load()) accepting = accept_batch();
        } else {
            drive_conn(*ev);
        }
    }
}

// ---------------------------------------------------------------------------
// Idle sweep (all modes): connections are parked on a hierarchical timer
// wheel at accept time and lazily rescheduled — a deadline that fires
// checks the connection's last-activity stamp and either re-parks it at
// stamp+timeout or reaps it. Cost per sweep is O(expired), not O(conns);
// an idle 100k-conn server advances the wheel and touches nothing.

void ServerCore::sweep_loop() {
    fabric::Process::bind_to_thread(&rt_->process());
    ThreadTicket ticket(*this);
    while (!stopping_.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        const std::uint64_t now = now_ms();
        for (const Handle h : wheel_.advance(now))
            handle_idle_deadline(h, now);
    }
}

void ServerCore::handle_idle_deadline(Handle h, std::uint64_t now) {
    osal::CheckedLock lk(state_mu(h));
    Conn* conn = slab_.get(h);
    if (conn == nullptr || conn->closed || conn->freeing)
        return; // already gone; its wheel entry just expired unused
    const std::uint64_t last =
        conn->last_activity_ms.load(std::memory_order_relaxed);
    if (now < last + opts_.idle_timeout_ms) {
        wheel_.schedule(last + opts_.idle_timeout_ms, h);
        return;
    }
    idle_reaped_.fetch_add(1, std::memory_order_relaxed);
    // Closing the receive mailbox wakes the connection's driver (any
    // mode), which then observes end-of-stream and releases the slot.
    conn->link->abort();
}

// Pool elasticity: a handler that waits on progress made by OTHER
// requests (parallel-invocation rendezvous, member collectives) would
// deadlock a fixed pool once such waits occupy every worker. Handlers
// bracket those waits with osal::BlockingHint::Region; the enter hook
// spawns a spare worker whenever the last runnable one is about to
// block, and surplus workers retire once the waits are over. Protocols
// that never block (plain request/reply) keep the pool at exactly
// Options::workers.

void ServerCore::pool_spawn_locked() {
    pool_.emplace_back(
        osal::sched::spawn_thread([this] { worker_loop(); }, "svc.worker"));
    ++pool_threads_;
}

void ServerCore::worker_entered_blocking() {
    osal::CheckedLock lk(pool_mu_);
    ++pool_blocked_;
    if (pool_threads_ == pool_blocked_ && !stopping_.load())
        pool_spawn_locked();
}

void ServerCore::worker_exited_blocking() {
    osal::CheckedLock lk(pool_mu_);
    --pool_blocked_;
}

void ServerCore::join_pool() {
    // Workers spawn peers (enter hook), so drain in rounds; stopping_ is
    // already set, which stops further growth.
    for (;;) {
        std::vector<std::thread> batch;
        {
            osal::CheckedLock lk(pool_mu_);
            batch.swap(pool_);
        }
        if (batch.empty()) return;
        for (auto& t : batch) osal::sched::join(t);
    }
}

void ServerCore::worker_loop() {
    fabric::Process::bind_to_thread(&rt_->process());
    ThreadTicket ticket(*this);
    osal::BlockingHint::Scope hint({[this] { worker_entered_blocking(); },
                                    [this] { worker_exited_blocking(); }});
    for (;;) {
        {
            osal::CheckedLock lk(pool_mu_);
            if (pool_threads_ > opts_.workers + pool_blocked_) {
                --pool_threads_; // surplus spare: retire
                return;
            }
        }
        auto item = work_.pop();
        if (!item.has_value()) break;
        const Handle h = *item;
        Conn* conn = slab_.get(h);
        if (conn == nullptr) continue; // released while queued (shutdown)
        bool do_free = false;
        for (;;) {
            util::Message frame;
            {
                osal::CheckedLock lk(state_mu(h));
                if (conn->frames.empty()) {
                    conn->busy = false;
                    do_free = claim_free_locked(*conn);
                    break;
                }
                frame = std::move(conn->frames.front());
                conn->frames.pop_front();
            }
            try {
                conn->proto->on_frame(*conn->link, std::move(frame));
            } catch (const std::exception& e) {
                PLOG(warn, "svc") << endpoint_
                                  << ": request handler failed: "
                                  << e.what();
                // Drop the connection: discard its queued frames and mark
                // the stream dead so the driver deregisters + releases.
                conn->link->abort();
                osal::CheckedLock lk(state_mu(h));
                conn->frames.clear();
            }
        }
        if (do_free) free_conn(h);
    }
    osal::CheckedLock lk(pool_mu_); // work_ closed: shutting down
    --pool_threads_;
}

// ---------------------------------------------------------------------------
// Thread-per-connection mode (the historical server shape, kept as the
// baseline the benches compare against). Idle reaping works here too: the
// sweeper's abort closes the receive mailbox, which wakes the private
// wait set below and reads as end-of-stream.

void ServerCore::legacy_accept_loop() {
    fabric::Process::bind_to_thread(&rt_->process());
    ThreadTicket ticket(*this);
    while (!stopping_.load()) {
        ptm::VLink link = listener_->accept();
        if (!link.valid()) return; // shut down
        const Handle h = adopt(std::move(link));
        workers_.spawn([this, h] { blocking_conn_loop(h); });
    }
}

void ServerCore::blocking_conn_loop(Handle h) {
    fabric::Process::bind_to_thread(&rt_->process());
    ThreadTicket ticket(*this);
    Conn* conn = slab_.get(h);
    // The idle sweep or a force-shutdown can reap the connection between
    // adopt() in the accept loop and this worker actually running; a stale
    // generation tag then yields nullptr and the loop has nothing to serve.
    if (conn == nullptr) return;
    osal::WaitSet ws;
    ws.add(conn->link->rx_mailbox(), 1);
    for (;;) {
        util::Message frame;
        Protocol::Extract st;
        try {
            st = conn->proto->try_extract(*conn->link, frame);
        } catch (const std::exception& e) {
            PLOG(warn, "svc") << endpoint_
                              << ": connection dropped: " << e.what();
            st = Protocol::Extract::kClosed;
        }
        if (st == Protocol::Extract::kFrame) {
            frames_.fetch_add(1, std::memory_order_relaxed);
            conn->last_activity_ms.store(now_ms(),
                                         std::memory_order_relaxed);
            try {
                conn->proto->on_frame(*conn->link, std::move(frame));
            } catch (const std::exception& e) {
                PLOG(warn, "svc") << endpoint_
                                  << ": request handler failed: "
                                  << e.what();
                break;
            }
            continue;
        }
        if (st == Protocol::Extract::kClosed) break;
        ws.wait(); // kNeedMore: block until a chunk (or EOF) arrives
    }
    ws.remove(1);
    bool do_free = false;
    {
        osal::CheckedLock lk(state_mu(h));
        conn->closed = true;
        do_free = claim_free_locked(*conn);
    }
    if (do_free) free_conn(h);
}

} // namespace padico::svc
