#pragma once
/// \file clock.hpp
/// Per-process virtual clock. Clocks advance through explicit compute()
/// charges and through communication (Lamport-style: a receiver merges the
/// modeled delivery timestamp of each message it consumes). Elapsed virtual
/// time between two points on one process is what benchmarks report.

#include <atomic>

#include "util/simtime.hpp"

namespace padico::fabric {

class VirtualClock {
public:
    SimTime now() const noexcept {
        return now_.load(std::memory_order_relaxed);
    }

    /// Charge a local duration (CPU work, software overhead). Atomic so
    /// that concurrent activities of one process (e.g. a parallel stub
    /// fanning out from several threads on a dual-CPU node) do not lose
    /// charges.
    void advance(SimTime d) noexcept {
        now_.fetch_add(d, std::memory_order_relaxed);
    }

    /// Move forward to \p t if \p t is later (message delivery).
    void merge(SimTime t) noexcept {
        SimTime cur = now_.load(std::memory_order_relaxed);
        while (t > cur && !now_.compare_exchange_weak(
                              cur, t, std::memory_order_relaxed)) {
        }
    }

    /// Jump to an absolute time if later (used when a blocking op
    /// completes; monotone so concurrent activities cannot move time back).
    void set(SimTime t) noexcept { merge(t); }

private:
    std::atomic<SimTime> now_{0};
};

} // namespace padico::fabric
