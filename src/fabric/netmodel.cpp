#include "fabric/netmodel.hpp"

#include "util/error.hpp"

namespace padico::fabric {

LinkParams default_params(NetTech tech) {
    LinkParams p;
    switch (tech) {
    case NetTech::Myrinet2000:
        // 250 MB/s links; the paper reports 96% attainable (240 MB/s).
        p.bandwidth_mb = 250.0;
        p.efficiency = 0.96;
        p.latency = usec(7.0);
        p.exclusive_open = true; // BIP/GM: one owner per NIC
        p.secure = true;         // private SAN inside a machine room
        p.paradigm = Paradigm::Parallel;
        return p;
    case NetTech::Sci:
        p.bandwidth_mb = 160.0;
        p.efficiency = 0.85;
        p.latency = usec(4.0);
        p.exclusive_open = true; // limited non-shareable mappings
        p.secure = true;
        p.paradigm = Paradigm::Parallel;
        return p;
    case NetTech::FastEthernet:
        // 100 Mb/s = 12.5 MB/s raw; ~11.2 MB/s attainable over TCP.
        p.bandwidth_mb = 12.5;
        p.efficiency = 0.9;
        p.latency = usec(60.0);
        p.exclusive_open = false; // the OS socket stack multiplexes
        p.secure = true;          // switched LAN inside one site
        p.paradigm = Paradigm::Distributed;
        return p;
    case NetTech::GigabitEthernet:
        p.bandwidth_mb = 125.0;
        p.efficiency = 0.85;
        p.latency = usec(35.0);
        p.exclusive_open = false;
        p.secure = true;
        p.paradigm = Paradigm::Distributed;
        return p;
    case NetTech::Wan:
        // Era academic WAN: a few MB/s, millisecond latency, untrusted.
        p.bandwidth_mb = 4.0;
        p.efficiency = 0.9;
        p.latency = msec(5.0);
        p.exclusive_open = false;
        p.secure = false;
        p.paradigm = Paradigm::Distributed;
        return p;
    }
    throw UsageError("unknown network technology");
}

const char* tech_name(NetTech tech) {
    switch (tech) {
    case NetTech::Myrinet2000: return "Myrinet-2000";
    case NetTech::Sci: return "SCI";
    case NetTech::FastEthernet: return "Fast-Ethernet";
    case NetTech::GigabitEthernet: return "Gigabit-Ethernet";
    case NetTech::Wan: return "WAN";
    }
    return "?";
}

SimTime one_way_time(const LinkParams& link, const StackCosts& stack,
                     std::uint64_t bytes) {
    const SimTime wire = transfer_time(bytes, attainable_mb(link));
    const SimTime cpu =
        stack.per_msg_send + stack.per_msg_recv +
        static_cast<SimTime>(static_cast<double>(bytes) *
                             (stack.per_byte_send_ns + stack.per_byte_recv_ns));
    return link.latency + wire + cpu;
}

} // namespace padico::fabric
