#pragma once
/// \file packet.hpp
/// The unit of delivery on a simulated adapter.

#include <cstdint>

#include "util/bytes.hpp"
#include "util/simtime.hpp"

namespace padico::fabric {

/// Grid-wide process identifier.
using ProcessId = std::uint32_t;
inline constexpr ProcessId kNoProcess = 0xffffffffu;

/// Logical channel id; allocation is coordinated through Grid::channel_id.
using ChannelId = std::uint64_t;

class NetworkSegment;

/// Flag bits carried by packets (interpreted by the layers above).
enum PacketFlags : std::uint32_t {
    kFlagEncrypted = 1u << 0, ///< payload scrambled by the security personality
};

struct Packet {
    ChannelId channel = 0;
    ProcessId src = kNoProcess;
    ProcessId dst = kNoProcess;
    SimTime deliver_time = 0; ///< modeled arrival (last byte received)
    std::uint32_t flags = 0;
    NetworkSegment* via = nullptr; ///< segment the packet traveled on
    util::Message payload;
#ifdef PADICO_CHECK_ENABLED
    /// Sender's virtual clock at submission, stamped by Port::send so the
    /// receive side can audit Lamport monotonicity (deliver_time can never
    /// precede the send). Exists only under PADICO_CHECK=ON: binaries with
    /// and without the flag are ABI-incompatible and must not be mixed.
    SimTime check_sent_at = 0;
#endif
};

} // namespace padico::fabric
