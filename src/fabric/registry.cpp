#include "fabric/registry.hpp"

#include "util/strings.hpp"
#include "util/xml.hpp"

namespace padico::fabric {

namespace {

bool machine_matches(Grid& grid, Machine& m, const MachineQuery& q) {
    (void)grid;
    if (m.cpus() < q.min_cpus) return false;
    for (const auto& [key, value] : q.attrs) {
        if (m.attr_or(key, "") != value) return false;
    }
    if (q.network) {
        bool found = false;
        for (Adapter* a : m.adapters())
            if (a->segment().tech() == *q.network) found = true;
        if (!found) return false;
    }
    if (q.min_bandwidth_mb > 0.0) {
        bool found = false;
        for (Adapter* a : m.adapters())
            if (attainable_mb(a->segment().params()) >= q.min_bandwidth_mb)
                found = true;
        if (!found) return false;
    }
    return true;
}

} // namespace

std::vector<Machine*> discover(Grid& grid, const MachineQuery& query) {
    std::vector<Machine*> out;
    for (const auto& m : grid.machines())
        if (machine_matches(grid, *m, query)) out.push_back(m.get());
    return out;
}

NetTech parse_tech(const std::string& name) {
    if (name == "myrinet2000" || name == "myrinet") return NetTech::Myrinet2000;
    if (name == "sci") return NetTech::Sci;
    if (name == "fast-ethernet" || name == "ethernet100")
        return NetTech::FastEthernet;
    if (name == "gigabit-ethernet") return NetTech::GigabitEthernet;
    if (name == "wan") return NetTech::Wan;
    throw UsageError("unknown network technology '" + name + "'");
}

void build_grid_from_xml(Grid& grid, const std::string& xml_text) {
    const auto root = util::xml_parse(xml_text);
    PADICO_WIRE_CHECK(root->name() == "grid", "topology root must be <grid>");

    for (const auto& seg : root->children_named("segment")) {
        NetworkSegment& s =
            grid.add_segment(seg->attr("name"), parse_tech(seg->attr("tech")));
        if (seg->has_attr("secure"))
            s.set_secure(seg->attr("secure") == "true");
        // shared="true": a genuinely shared medium (hub/bus) — timing is
        // serialized segment-globally instead of per NIC direction.
        if (seg->has_attr("shared") && seg->attr("shared") == "true")
            s.set_timing_mode(TimingMode::kSegmentGlobal);
    }
    for (const auto& mx : root->children_named("machine")) {
        const int cpus =
            static_cast<int>(util::parse_uint(mx->attr_or("cpus", "2")));
        Machine& m = grid.add_machine(mx->attr("name"), cpus);
        for (const auto& [key, value] : mx->attrs()) {
            if (key != "name" && key != "cpus") m.set_attr(key, value);
        }
        for (const auto& at : mx->children_named("attach"))
            grid.attach(m, grid.segment(at->attr("segment")));
    }
}

} // namespace padico::fabric
