#include "fabric/registry.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "util/strings.hpp"
#include "util/xml.hpp"

namespace padico::fabric {

namespace {

bool machine_matches(Grid& grid, Machine& m, const MachineQuery& q) {
    (void)grid;
    if (m.cpus() < q.min_cpus) return false;
    for (const auto& [key, value] : q.attrs) {
        if (m.attr_or(key, "") != value) return false;
    }
    if (q.network) {
        bool found = false;
        for (Adapter* a : m.adapters())
            if (a->segment().tech() == *q.network) found = true;
        if (!found) return false;
    }
    if (q.min_bandwidth_mb > 0.0) {
        bool found = false;
        for (Adapter* a : m.adapters())
            if (attainable_mb(a->segment().params()) >= q.min_bandwidth_mb)
                found = true;
        if (!found) return false;
    }
    return true;
}

} // namespace

std::vector<Machine*> discover(Grid& grid, const MachineQuery& query) {
    std::vector<Machine*> out;
    for (const auto& m : grid.machines())
        if (machine_matches(grid, *m, query)) out.push_back(m.get());
    return out;
}

NetTech parse_tech(const std::string& name) {
    if (name == "myrinet2000" || name == "myrinet") return NetTech::Myrinet2000;
    if (name == "sci") return NetTech::Sci;
    if (name == "fast-ethernet" || name == "ethernet100")
        return NetTech::FastEthernet;
    if (name == "gigabit-ethernet") return NetTech::GigabitEthernet;
    if (name == "wan") return NetTech::Wan;
    throw UsageError("unknown network technology '" + name + "'");
}

namespace {

/// Required attribute with element context in the error message.
const std::string& xml_attr(const util::XmlNode& el, const std::string& key) {
    if (!el.has_attr(key))
        throw ProtocolError("<" + el.name() + "> is missing required attribute '" +
                            key + "'");
    return el.attr(key);
}

} // namespace

void build_grid_from_xml(Grid& grid, const std::string& xml_text) {
    const auto root = util::xml_parse(xml_text);
    if (root->name() != "grid")
        throw ProtocolError("topology root element must be <grid>, got <" +
                            root->name() + ">");

    for (const auto& seg : root->children_named("segment")) {
        const std::string& name = xml_attr(*seg, "name");
        if (grid.find_segment(name) != nullptr)
            throw ResourceConflict("<segment name=\"" + name +
                                   "\"> duplicates an earlier segment");
        NetTech tech;
        try {
            tech = parse_tech(xml_attr(*seg, "tech"));
        } catch (const UsageError& e) {
            throw ProtocolError("<segment name=\"" + name + "\">: " + e.what());
        }
        NetworkSegment& s = grid.add_segment(name, tech);
        if (seg->has_attr("secure"))
            s.set_secure(seg->attr("secure") == "true");
        // shared="true": a genuinely shared medium (hub/bus) — timing is
        // serialized segment-globally instead of per NIC direction.
        if (seg->has_attr("shared") && seg->attr("shared") == "true")
            s.set_timing_mode(TimingMode::kSegmentGlobal);
    }
    for (const auto& mx : root->children_named("machine")) {
        const std::string& name = xml_attr(*mx, "name");
        if (grid.find_machine(name) != nullptr)
            throw ResourceConflict("<machine name=\"" + name +
                                   "\"> duplicates an earlier machine");
        int cpus = 2;
        if (mx->has_attr("cpus")) {
            try {
                cpus = static_cast<int>(util::parse_uint(mx->attr("cpus")));
            } catch (const Error& e) {
                throw ProtocolError("<machine name=\"" + name +
                                    "\">: bad 'cpus' attribute: " + e.what());
            }
        }
        Machine& m = grid.add_machine(name, cpus);
        for (const auto& [key, value] : mx->attrs()) {
            if (key != "name" && key != "cpus") m.set_attr(key, value);
        }
        for (const auto& at : mx->children_named("attach")) {
            const std::string& sname = xml_attr(*at, "segment");
            NetworkSegment* s = grid.find_segment(sname);
            if (s == nullptr)
                throw LookupError("<attach segment=\"" + sname +
                                  "\"> of machine \"" + name +
                                  "\": no such segment");
            grid.attach(m, *s);
        }
    }
}

// --- topology-generator DSL ------------------------------------------------

namespace {

[[noreturn]] void dsl_error(int line, const std::string& what) {
    throw UsageError("topology dsl line " + std::to_string(line) + ": " + what);
}

/// key=value arguments of one directive; get() marks keys as consumed so
/// leftovers can be rejected by name.
class DslArgs {
public:
    DslArgs(int line, std::string verb) : line_(line), verb_(std::move(verb)) {}

    void add(const std::string& token) {
        const auto eq = token.find('=');
        if (eq == std::string::npos || eq == 0)
            dsl_error(line_, "expected key=value, got '" + token + "' in '" +
                                 verb_ + "' directive");
        const std::string key = token.substr(0, eq);
        if (kv_.count(key) != 0)
            dsl_error(line_, "duplicate key '" + key + "' in '" + verb_ +
                                 "' directive");
        kv_[key] = token.substr(eq + 1);
    }

    std::optional<std::string> get(const std::string& key) {
        auto it = kv_.find(key);
        if (it == kv_.end()) return std::nullopt;
        consumed_.push_back(key);
        return it->second;
    }
    std::string require(const std::string& key) {
        auto v = get(key);
        if (!v)
            dsl_error(line_, "'" + verb_ + "' directive needs a " + key +
                                 "= argument");
        return *v;
    }
    std::string get_or(const std::string& key, const std::string& dflt) {
        auto v = get(key);
        return v ? *v : dflt;
    }

    std::size_t number(const std::string& key, const std::string& value) {
        try {
            return util::parse_uint(value);
        } catch (const Error&) {
            dsl_error(line_, "bad number '" + value + "' for " + key +
                                 "= in '" + verb_ + "' directive");
        }
    }
    std::size_t require_number(const std::string& key) {
        return number(key, require(key));
    }
    std::vector<std::size_t> number_list(const std::string& key,
                                         const std::string& value) {
        std::vector<std::size_t> out;
        for (const auto& part : util::split(value, ','))
            out.push_back(number(key, part));
        return out;
    }
    NetTech tech(const std::string& dflt) {
        const std::string name = get_or("tech", dflt);
        try {
            return parse_tech(name);
        } catch (const UsageError& e) {
            dsl_error(line_, std::string(e.what()) + " in '" + verb_ +
                                 "' directive");
        }
    }
    int cpus() {
        auto v = get("cpus");
        return v ? static_cast<int>(number("cpus", *v)) : 2;
    }

    /// Reject keys no branch consumed (catches typos like sizes=).
    void finish() const {
        for (const auto& [key, value] : kv_) {
            (void)value;
            if (std::find(consumed_.begin(), consumed_.end(), key) ==
                consumed_.end())
                dsl_error(line_, "unknown key '" + key + "' in '" + verb_ +
                                     "' directive");
        }
    }

private:
    int line_;
    std::string verb_;
    std::map<std::string, std::string> kv_;
    std::vector<std::string> consumed_;
};

} // namespace

std::unique_ptr<Topology> build_topology_from_dsl(Grid& grid,
                                                  const std::string& text) {
    auto topo = std::make_unique<Topology>(grid);
    std::map<std::string, Zone*> byname;
    int lineno = 0;
    for (const auto& raw : util::split(text, '\n')) {
        ++lineno;
        std::string line(util::trim(raw.substr(0, raw.find('#'))));
        if (line.empty()) continue;
        std::vector<std::string> tokens;
        for (const auto& t : util::split(line, ' '))
            if (!util::trim(t).empty()) tokens.emplace_back(util::trim(t));
        DslArgs args(lineno, tokens.front());
        for (std::size_t i = 1; i < tokens.size(); ++i) args.add(tokens[i]);

        const std::string& verb = tokens.front();
        if (verb == "cluster") {
            const std::string name = args.require("name");
            const std::string kind = args.get_or("kind", "full");
            Zone* z = nullptr;
            try {
                if (kind == "full" || kind == "star") {
                    ClusterSpec spec;
                    spec.size = args.require_number("size");
                    spec.wiring = kind == "star" ? ClusterWiring::kStar
                                                 : ClusterWiring::kFull;
                    spec.tech = args.tech("fast-ethernet");
                    spec.cpus = args.cpus();
                    z = &topo->add_cluster(name, spec);
                } else if (kind == "fattree") {
                    FatTreeSpec spec;
                    spec.down = args.number_list("down", args.require("down"));
                    if (auto up = args.get("up"))
                        spec.up = args.number_list("up", *up);
                    spec.tech = args.tech("gigabit-ethernet");
                    spec.cpus = args.cpus();
                    z = &topo->add_fattree(name, std::move(spec));
                } else if (kind == "dragonfly") {
                    DragonflySpec spec;
                    spec.groups = args.require_number("groups");
                    spec.routers = args.require_number("routers");
                    spec.hosts = args.require_number("hosts");
                    spec.tech = args.tech("gigabit-ethernet");
                    spec.cpus = args.cpus();
                    z = &topo->add_dragonfly(name, spec);
                } else {
                    dsl_error(lineno, "unknown cluster kind '" + kind +
                                          "' (full|star|fattree|dragonfly)");
                }
            } catch (const UsageError& e) {
                if (std::string(e.what()).starts_with("topology dsl")) throw;
                dsl_error(lineno, e.what());
            } catch (const ResourceConflict& e) {
                dsl_error(lineno, e.what());
            }
            byname[name] = z;
        } else if (verb == "wan") {
            const std::string name = args.require("name");
            WanZone* w;
            auto it = byname.find(name);
            if (it == byname.end()) {
                try {
                    w = &topo->add_wan(name, args.tech("wan"));
                } catch (const ResourceConflict& e) {
                    dsl_error(lineno, e.what());
                }
                byname[name] = w;
            } else {
                w = dynamic_cast<WanZone*>(it->second);
                if (w == nullptr)
                    dsl_error(lineno, "zone '" + name + "' is not a wan");
            }
            if (auto links = args.get("link")) {
                for (const auto& childname : util::split(*links, ',')) {
                    auto cit = byname.find(std::string(util::trim(childname)));
                    if (cit == byname.end())
                        dsl_error(lineno,
                                  "link= refers to unknown zone '" +
                                      std::string(util::trim(childname)) + "'");
                    try {
                        w->link(*cit->second);
                    } catch (const UsageError& e) {
                        dsl_error(lineno, e.what());
                    }
                }
            }
        } else {
            dsl_error(lineno, "unknown directive '" + verb +
                                  "' (cluster|wan)");
        }
        args.finish();
    }
    if (byname.empty())
        throw UsageError("topology dsl: no zones defined");
    std::vector<std::string> roots;
    for (const auto& [name, z] : byname)
        if (z->parent() == nullptr) roots.push_back(name);
    if (roots.size() != 1) {
        std::string list;
        for (const auto& r : roots) list += (list.empty() ? "" : ", ") + r;
        throw UsageError(
            "topology dsl: expected exactly one root zone after linking, "
            "found " +
            std::to_string(roots.size()) + " (" + list + ")");
    }
    return topo;
}

std::unique_ptr<Topology> build_topology_from_xml(Grid& grid,
                                                  const std::string& xml_text) {
    build_grid_from_xml(grid, xml_text);
    auto topo = std::make_unique<Topology>(grid);
    topo->wrap_flat("flat");
    return topo;
}

} // namespace padico::fabric
