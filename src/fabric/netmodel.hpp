#pragma once
/// \file netmodel.hpp
/// Calibrated cost model for the simulated networks and for the software
/// stacks of the middleware implementations the paper measured.
///
/// The hardware numbers reproduce the paper's testbed (dual-PIII 1 GHz,
/// Myrinet-2000, switched Fast-Ethernet, Linux 2.2); the software numbers
/// are reverse-engineered from the paper's own measurements (§4.4):
///
///   peak_bw(stack) = 1 / (1/(hw_bw*eff) + per_byte_cpu)
///   latency(stack) = hw_latency + per_msg_cpu
///
/// e.g. Mico on Myrinet: 1/(1/240 + 14.0e-3 us/B) = 55 MB/s  (paper: 55)
///      Mico on TCP/Eth-100: 1/(1/11.25 + 14.0e-3)  = 9.7 MB/s (paper: 9.8)

#include <cstdint>
#include <string>

#include "util/simtime.hpp"

namespace padico::fabric {

/// Network technology classes (paper §1: WAN, LAN or SAN).
enum class NetTech { Myrinet2000, Sci, FastEthernet, GigabitEthernet, Wan };

/// Paradigm the hardware is best used with (paper §4.3.1: "each type of
/// network is used with the most appropriate paradigm").
enum class Paradigm { Parallel, Distributed };

/// Hardware parameters of one network segment.
struct LinkParams {
    double bandwidth_mb = 0.0;  ///< raw link bandwidth, MB/s
    double efficiency = 1.0;    ///< attainable fraction with a perfect stack
    SimTime latency = 0;        ///< one-way hardware latency
    bool exclusive_open = false;///< NIC usable by a single owner (BIP/GM)
    bool secure = true;         ///< physically private network?
    Paradigm paradigm = Paradigm::Distributed;
};

/// Canonical parameters for a technology.
LinkParams default_params(NetTech tech);

const char* tech_name(NetTech tech);

/// Effective wire bandwidth (MB/s) a perfect software stack can reach.
inline double attainable_mb(const LinkParams& p) {
    return p.bandwidth_mb * p.efficiency;
}

/// Era host memory copy bandwidth (PIII-1GHz class), MB/s. Marshalling
/// copies of copying ORBs are charged at this rate.
inline constexpr double kMemcpyMB = 350.0;

/// Per-byte cost of n memcpy passes, in ns/byte.
inline constexpr double copy_ns_per_byte(double n_copies) {
    return n_copies * 1e3 / kMemcpyMB;
}

/// Software cost profile of one protocol stack / middleware implementation
/// on top of PadicoTM. per_msg costs are charged once per message on the
/// relevant side; per_byte costs are charged proportionally to payload.
struct StackCosts {
    std::string name;
    SimTime per_msg_send = 0;   ///< sender software overhead per message
    SimTime per_msg_recv = 0;   ///< receiver software overhead per message
    double per_byte_send_ns = 0;///< marshalling cost (copies), ns/byte
    double per_byte_recv_ns = 0;///< unmarshalling cost (copies), ns/byte
};

/// Total modeled one-way time for a message of \p bytes over a link.
SimTime one_way_time(const LinkParams& link, const StackCosts& stack,
                     std::uint64_t bytes);

} // namespace padico::fabric
