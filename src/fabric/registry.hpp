#pragma once
/// \file registry.hpp
/// Grid information service: machine discovery by attributes and a grid
/// topology builder from an XML description. Covers the paper's §2 use
/// cases "deployment: machine discovery" (features of the machines are not
/// known statically — query them) and "localization constraints" (company X
/// code must stay on company X machines).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fabric/grid.hpp"
#include "fabric/topology.hpp"

namespace padico::fabric {

/// A discovery query: all clauses must hold.
struct MachineQuery {
    /// Required attribute values, e.g. {"owner","companyX"}.
    std::vector<std::pair<std::string, std::string>> attrs;
    /// Machine must be attached to a segment of this technology.
    std::optional<NetTech> network;
    /// Machine must be attached to a segment with at least this attainable
    /// bandwidth (MB/s).
    double min_bandwidth_mb = 0.0;
    int min_cpus = 1;
};

/// All machines of \p grid satisfying \p query, in declaration order.
std::vector<Machine*> discover(Grid& grid, const MachineQuery& query);

/// Build topology from XML:
///
///   <grid>
///     <segment name="myri0" tech="myrinet2000" secure="true"/>
///     <machine name="node0" cpus="2" owner="inria">
///       <attach segment="myri0"/>
///     </machine>
///   </grid>
///
/// Unknown machine attributes become discovery attributes. Technologies:
/// myrinet2000, sci, fast-ethernet, gigabit-ethernet, wan.
///
/// Errors carry element/attribute context (which <segment>/<machine>, which
/// attribute); duplicate machine or segment names are rejected explicitly.
void build_grid_from_xml(Grid& grid, const std::string& xml_text);

/// Parse a technology name as used in topology XML.
NetTech parse_tech(const std::string& name);

/// Build a zoned topology from the generator DSL — one directive per line,
/// `#` comments, `key=value` arguments:
///
///   cluster name=siteA kind=full size=32 tech=fast-ethernet cpus=2
///   cluster name=siteB kind=star size=16
///   cluster name=treeC kind=fattree down=4,4,2 up=1,2,1
///   cluster name=flyD kind=dragonfly groups=4 routers=4 hosts=8
///   wan name=core tech=wan
///   wan name=core link=siteA,siteB,treeC,flyD
///
/// Kinds: full | star | fattree | dragonfly. `wan link=` stitches the named
/// child zones onto the WAN's backbone (repeatable; creates the WAN on first
/// mention). Exactly one root zone must remain once all links are applied.
/// Errors report the offending line, directive and key.
std::unique_ptr<Topology> build_topology_from_dsl(Grid& grid,
                                                  const std::string& text);

/// Compatibility mode for hand-written flat XML: builds the grid with
/// build_grid_from_xml and wraps it in a single FlatZone root named "flat"
/// (all segments stay in zone 0 — identical routing to the pre-zone code).
std::unique_ptr<Topology> build_topology_from_xml(Grid& grid,
                                                  const std::string& xml_text);

} // namespace padico::fabric
