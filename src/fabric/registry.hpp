#pragma once
/// \file registry.hpp
/// Grid information service: machine discovery by attributes and a grid
/// topology builder from an XML description. Covers the paper's §2 use
/// cases "deployment: machine discovery" (features of the machines are not
/// known statically — query them) and "localization constraints" (company X
/// code must stay on company X machines).

#include <optional>
#include <string>
#include <vector>

#include "fabric/grid.hpp"

namespace padico::fabric {

/// A discovery query: all clauses must hold.
struct MachineQuery {
    /// Required attribute values, e.g. {"owner","companyX"}.
    std::vector<std::pair<std::string, std::string>> attrs;
    /// Machine must be attached to a segment of this technology.
    std::optional<NetTech> network;
    /// Machine must be attached to a segment with at least this attainable
    /// bandwidth (MB/s).
    double min_bandwidth_mb = 0.0;
    int min_cpus = 1;
};

/// All machines of \p grid satisfying \p query, in declaration order.
std::vector<Machine*> discover(Grid& grid, const MachineQuery& query);

/// Build topology from XML:
///
///   <grid>
///     <segment name="myri0" tech="myrinet2000" secure="true"/>
///     <machine name="node0" cpus="2" owner="inria">
///       <attach segment="myri0"/>
///     </machine>
///   </grid>
///
/// Unknown machine attributes become discovery attributes. Technologies:
/// myrinet2000, sci, fast-ethernet, gigabit-ethernet, wan.
void build_grid_from_xml(Grid& grid, const std::string& xml_text);

/// Parse a technology name as used in topology XML.
NetTech parse_tech(const std::string& name);

} // namespace padico::fabric
