#pragma once
/// \file busylist.hpp
/// Capacity reservations for one direction of one NIC. A transfer of
/// duration d arriving at virtual time t occupies the earliest gap of
/// length d at or after t. Unlike a scalar busy-until, the interval list
/// is insensitive to the REAL-time order in which transfers are booked:
/// a small, virtually-late message can no longer push a virtually-early
/// transfer behind it (threads book reservations in scheduling order, not
/// in virtual-time order).

#include <vector>

#include "util/simtime.hpp"

namespace padico::fabric {

class BusyList {
public:
    /// Reserve \p duration starting no earlier than \p earliest; returns
    /// the reserved start time.
    SimTime reserve(SimTime earliest, SimTime duration) {
        if (duration <= 0) return earliest;
        // Find the first gap of the required length.
        SimTime cursor = earliest;
        std::size_t pos = 0;
        for (; pos < busy_.size(); ++pos) {
            const Span& b = busy_[pos];
            if (b.end <= cursor) continue;       // already behind us
            if (b.start >= cursor + duration) break; // gap before this span
            cursor = b.end;                      // hop over the busy span
        }
        insert(pos, cursor, cursor + duration);
        return cursor;
    }

    std::size_t spans() const noexcept { return busy_.size(); }

private:
    struct Span {
        SimTime start;
        SimTime end;
    };

    void insert(std::size_t pos, SimTime start, SimTime end) {
        // `pos` is the index of the first span beginning after the new one
        // (maintained sorted by start). Coalesce with touching neighbours
        // to bound growth under streaming workloads.
        const bool join_prev = pos > 0 && busy_[pos - 1].end == start;
        const bool join_next = pos < busy_.size() && busy_[pos].start == end;
        if (join_prev && join_next) {
            busy_[pos - 1].end = busy_[pos].end;
            busy_.erase(busy_.begin() + static_cast<std::ptrdiff_t>(pos));
        } else if (join_prev) {
            busy_[pos - 1].end = end;
        } else if (join_next) {
            busy_[pos].start = start;
        } else {
            busy_.insert(busy_.begin() + static_cast<std::ptrdiff_t>(pos),
                         Span{start, end});
        }
    }

    std::vector<Span> busy_; ///< sorted by start, disjoint
};

} // namespace padico::fabric
