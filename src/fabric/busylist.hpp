#pragma once
/// \file busylist.hpp
/// Capacity reservations for one direction of one NIC. A transfer of
/// duration d arriving at virtual time t occupies the earliest gap of
/// length d at or after t. Unlike a scalar busy-until, the interval list
/// is insensitive to the REAL-time order in which transfers are booked:
/// a small, virtually-late message can no longer push a virtually-early
/// transfer behind it (threads book reservations in scheduling order, not
/// in virtual-time order).
///
/// Two cost bounds keep the structure cheap under streaming workloads:
///  * reserve() binary-searches for the first span that can still overlap
///    the request instead of scanning from index 0 (spans are disjoint and
///    sorted, so their end times are sorted too);
///  * prune() retires spans behind a completed-time watermark. The caller
///    contracts that every later reserve() uses earliest >= horizon — the
///    fabric derives the horizon from the minimum virtual clock of the
///    processes that can still book on this list — which makes pruning
///    EXACT: no subsequent reservation can observe the difference. As a
///    belt-and-braces guard, reservations are clamped to never start
///    before the prune floor, so even a contract-violating caller can
///    never claim wire time that may already have been booked and retired.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "osal/checked.hpp"
#include "util/simtime.hpp"

namespace padico::fabric {

class BusyList {
public:
    /// Reserve \p duration starting no earlier than \p earliest; returns
    /// the reserved start time.
    SimTime reserve(SimTime earliest, SimTime duration) {
        if (duration <= 0) return earliest;
        SimTime cursor = std::max(earliest, floor_);
        // First span whose end lies beyond the cursor — everything before
        // it is already behind us. Spans are disjoint and sorted by start,
        // hence also by end, so this is a plain binary search.
        std::size_t pos = static_cast<std::size_t>(
            std::lower_bound(busy_.begin(), busy_.end(), cursor,
                             [](const Span& s, SimTime t) {
                                 return s.end <= t;
                             }) -
            busy_.begin());
        const SimTime start = fit_from(pos, cursor, duration);
        audit();
        return start;
    }

    /// The pre-sharding reference implementation: scan from index 0 and
    /// never prune. Kept as the A/B comparison path for the legacy
    /// segment-global timing mode; results are bit-identical to reserve()
    /// (a test asserts this).
    SimTime reserve_linear(SimTime earliest, SimTime duration) {
        if (duration <= 0) return earliest;
        SimTime cursor = std::max(earliest, floor_);
        std::size_t pos = 0;
        for (; pos < busy_.size(); ++pos) {
            if (busy_[pos].end <= cursor) continue; // already behind us
            break;
        }
        const SimTime start = fit_from(pos, cursor, duration);
        audit();
        return start;
    }

    /// Retire every span that ends at or before \p horizon. Exact as long
    /// as all later reserve() calls use earliest >= horizon (see file
    /// comment); the floor clamp keeps violations conservative.
    void prune(SimTime horizon) {
        if (horizon <= floor_) return;
        floor_ = horizon;
        std::size_t n = 0;
        while (n < busy_.size() && busy_[n].end <= horizon) ++n;
        if (n != 0) {
            busy_.erase(busy_.begin(),
                        busy_.begin() + static_cast<std::ptrdiff_t>(n));
            pruned_ += n;
        }
        audit();
    }

    std::size_t spans() const noexcept { return busy_.size(); }

    /// Most spans ever held at once (memory high-water mark).
    std::size_t high_water() const noexcept { return high_water_; }

    /// Total spans retired by prune() over the list's lifetime.
    std::uint64_t pruned() const noexcept { return pruned_; }

    /// Current prune watermark: no reservation can start before this.
    SimTime floor() const noexcept { return floor_; }

#ifdef PADICO_CHECK_ENABLED
    /// Test seam for the padico::check audit: raw span insertion with no
    /// sorting, coalescing, or audit — lets a test seed a corrupt list and
    /// assert the next reserve() reports it.
    void debug_inject_span(SimTime start, SimTime end) {
        busy_.push_back(Span{start, end});
    }
#endif

private:
    struct Span {
        SimTime start;
        SimTime end;
    };

    /// Hop over busy spans from \p pos until a gap of \p duration opens at
    /// or after \p cursor, insert, and return the reserved start.
    SimTime fit_from(std::size_t pos, SimTime cursor, SimTime duration) {
        for (; pos < busy_.size(); ++pos) {
            const Span& b = busy_[pos];
            if (b.start >= cursor + duration) break; // gap before this span
            cursor = b.end;                          // hop over the busy span
        }
        insert(pos, cursor, cursor + duration);
        return cursor;
    }

    void insert(std::size_t pos, SimTime start, SimTime end) {
        // `pos` is the index of the first span beginning after the new one
        // (maintained sorted by start). Coalesce with touching neighbours
        // to bound growth under streaming workloads.
        const bool join_prev = pos > 0 && busy_[pos - 1].end == start;
        const bool join_next = pos < busy_.size() && busy_[pos].start == end;
        if (join_prev && join_next) {
            busy_[pos - 1].end = busy_[pos].end;
            busy_.erase(busy_.begin() + static_cast<std::ptrdiff_t>(pos));
        } else if (join_prev) {
            busy_[pos - 1].end = end;
        } else if (join_next) {
            busy_[pos].start = start;
        } else {
            busy_.insert(busy_.begin() + static_cast<std::ptrdiff_t>(pos),
                         Span{start, end});
        }
        high_water_ = std::max(high_water_, busy_.size());
    }

    /// PADICO_CHECK=ON structural audit, run after every mutation: spans
    /// sorted, positive, disjoint (non-overlap), and none astride the
    /// prune floor (prune-exactness — a span the watermark passed through
    /// would mean retired wire time is still bookable, or vice versa).
    void audit() const {
#ifdef PADICO_CHECK_ENABLED
        for (std::size_t i = 0; i < busy_.size(); ++i) {
            const Span& s = busy_[i];
            PADICO_AUDIT(s.start < s.end,
                         "empty or inverted span [" +
                             std::to_string(s.start) + "," +
                             std::to_string(s.end) + ")");
            PADICO_AUDIT(s.end > floor_,
                         "span [" + std::to_string(s.start) + "," +
                             std::to_string(s.end) +
                             ") survived below the prune floor " +
                             std::to_string(floor_));
            if (i == 0) continue;
            const Span& p = busy_[i - 1];
            PADICO_AUDIT(p.end <= s.start,
                         "overlapping/unsorted spans [" +
                             std::to_string(p.start) + "," +
                             std::to_string(p.end) + ") and [" +
                             std::to_string(s.start) + "," +
                             std::to_string(s.end) + ")");
        }
#endif
    }

    std::vector<Span> busy_; ///< sorted by start, disjoint
    SimTime floor_ = 0;
    std::size_t high_water_ = 0;
    std::uint64_t pruned_ = 0;
};

} // namespace padico::fabric
