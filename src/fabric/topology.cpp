/// \file topology.cpp
/// Zone tree construction, deterministic wiring generators and the
/// shared-prefix route resolution of fabric::Topology (see topology.hpp).

#include "fabric/topology.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/error.hpp"

namespace padico::fabric {

const char* zone_kind_name(ZoneKind k) {
    switch (k) {
    case ZoneKind::Cluster:
        return "cluster";
    case ZoneKind::FatTree:
        return "fattree";
    case ZoneKind::Dragonfly:
        return "dragonfly";
    case ZoneKind::Wan:
        return "wan";
    case ZoneKind::Flat:
        return "flat";
    }
    return "?";
}

// --- Zone ------------------------------------------------------------------

Zone::Zone(Topology& topo, Zone* parent, std::string name, ZoneKind kind)
    : topo_(&topo), parent_(parent), name_(std::move(name)), kind_(kind) {
    depth_ = parent_ ? parent_->depth_ + 1 : 0;
    if (depth_ >= lockrank::kFabricZoneMaxDepth)
        throw UsageError("zone tree deeper than " +
                               std::to_string(lockrank::kFabricZoneMaxDepth) +
                               " at zone " + name_);
    id_ = kind_ == ZoneKind::Flat ? 0 : grid().register_zone();
    mu_.set_rank(lockrank::zone_rank(depth_), name_.c_str());
}

Grid& Zone::grid() { return topo_->grid(); }

std::string Zone::full_name() const {
    return parent_ ? parent_->full_name() + "/" + name_ : name_;
}

NetworkSegment& Zone::make_segment(const std::string& suffix, NetTech tech) {
    const std::string name = full_name() + "." + suffix;
    if (grid().find_segment(name) != nullptr)
        throw ResourceConflict("segment already exists: " + name);
    NetworkSegment& s = grid().add_segment(name, tech);
    s.set_zone(id_, full_name(), kind_ == ZoneKind::Wan);
    segments_.push_back(&s);
    return s;
}

Machine& Zone::make_machine(const std::string& suffix, int cpus) {
    const std::string name = full_name() + "." + suffix;
    if (grid().find_machine(name) != nullptr)
        throw ResourceConflict("machine already exists: " + name);
    Machine& m = grid().add_machine(name, cpus);
    owned_.push_back(&m);
    return m;
}

void Zone::add_member(Machine& m) {
    members_.push_back(&m);
    topo_->index_member(m, *this);
}

bool Zone::contains(const Machine& m) {
    // owned_/children_ are immutable once the tree is built, so the scan
    // needs no lock (resolve calls this while holding ancestor zone locks).
    for (const Machine* x : owned_)
        if (x == &m) return true;
    for (Zone* c : children_)
        if (c->contains(m)) return true;
    return false;
}

std::size_t Zone::try_member_index(const Machine& m) {
    osal::CheckedLock lk(mu_);
    if (index_.size() != members_.size()) {
        index_.clear();
        for (std::size_t i = 0; i < members_.size(); ++i)
            index_[members_[i]] = i;
    }
    auto it = index_.find(&m);
    return it == index_.end() ? npos : it->second;
}

std::size_t Zone::member_index(const Machine& m) {
    const std::size_t i = try_member_index(m);
    if (i == npos)
        throw LookupError("machine " + m.name() +
                                " is not a member of zone " + full_name());
    return i;
}

void Zone::adopt(Zone& z) {
    if (z.parent_ != nullptr)
        throw UsageError("zone " + z.full_name() +
                               " already has a parent");
    if (&z == this)
        throw UsageError("zone cannot adopt itself: " + full_name());
    z.parent_ = this;
    children_.push_back(&z);
    // Re-depth the adopted subtree: depth decides the lock rank and the
    // zone_name stamped on segments, both of which were provisional while
    // the subtree was a free-standing root.
    struct Fix {
        static void apply(Zone& n) {
            n.depth_ = n.parent_->depth_ + 1;
            if (n.depth_ >= lockrank::kFabricZoneMaxDepth)
                throw UsageError("zone tree deeper than " +
                                       std::to_string(
                                           lockrank::kFabricZoneMaxDepth) +
                                       " at zone " + n.name_);
            n.mu_.set_rank(lockrank::zone_rank(n.depth_), n.name_.c_str());
            for (NetworkSegment* s : n.segments_)
                s->set_zone(n.id_, n.full_name(),
                            n.kind_ == ZoneKind::Wan);
            for (Zone* c : n.children_) apply(*c);
        }
    };
    Fix::apply(z);
    Zone* top = this;
    while (top->parent_ != nullptr) top = top->parent_;
    topo_->register_root(*top);
}

// --- ClusterZone -----------------------------------------------------------

ClusterZone::ClusterZone(Topology& topo, Zone* parent, std::string name,
                         const ClusterSpec& spec)
    : Zone(topo, parent, std::move(name), ZoneKind::Cluster),
      wiring_(spec.wiring) {
    if (spec.size == 0)
        throw UsageError("cluster " + full_name() + " has size 0");
    if (wiring_ == ClusterWiring::kFull) {
        shared_ = &make_segment("lan", spec.tech);
    } else {
        hub_ = &make_machine("hub", spec.cpus);
    }
    for (std::size_t i = 0; i < spec.size; ++i) {
        Machine& m = make_machine("n" + std::to_string(i), spec.cpus);
        if (wiring_ == ClusterWiring::kFull) {
            grid().attach(m, *shared_);
        } else {
            NetworkSegment& spoke =
                make_segment("spoke" + std::to_string(i), spec.tech);
            grid().attach(*hub_, spoke);
            grid().attach(m, spoke);
            spokes_.push_back(&spoke);
        }
        add_member(m);
    }
}

Machine& ClusterZone::gateway() {
    return wiring_ == ClusterWiring::kStar ? *hub_ : *members_.front();
}

Path ClusterZone::path(Machine& a, Machine& b) {
    if (wiring_ == ClusterWiring::kFull) return {{shared_, &b}};
    if (&a == hub_) return {{spokes_[member_index(b)], &b}};
    if (&b == hub_) return {{spokes_[member_index(a)], hub_}};
    return {{spokes_[member_index(a)], hub_}, {spokes_[member_index(b)], &b}};
}

// --- FatTreeZone -----------------------------------------------------------

FatTreeZone::FatTreeZone(Topology& topo, Zone* parent, std::string name,
                         FatTreeSpec spec)
    : Zone(topo, parent, std::move(name), ZoneKind::FatTree),
      spec_(std::move(spec)) {
    if (spec_.down.empty())
        throw UsageError("fat tree " + full_name() + " has no levels");
    if (spec_.up.empty()) spec_.up.assign(spec_.down.size(), 1);
    if (spec_.up.size() != spec_.down.size())
        throw UsageError("fat tree " + full_name() +
                               ": up/down level counts differ");
    std::size_t hosts = 1;
    for (std::size_t d : spec_.down) {
        if (d == 0)
            throw UsageError("fat tree " + full_name() +
                                   ": zero-arity level");
        hosts *= d;
    }
    for (std::size_t u : spec_.up)
        if (u == 0)
            throw UsageError("fat tree " + full_name() +
                                   ": zero parallel uplinks");

    for (std::size_t h = 0; h < hosts; ++h) {
        Machine& m = make_machine("h" + std::to_string(h), spec_.cpus);
        add_member(m);
    }
    // Level l (1-based) has hosts / prod(down[0..l)) switches; the product
    // telescopes to exactly 1 switch at the top level.
    std::size_t n = hosts;
    for (std::size_t l = 1; l <= spec_.down.size(); ++l) {
        n /= spec_.down[l - 1];
        std::vector<Machine*> row;
        std::vector<NetworkSegment*> segrow;
        for (std::size_t j = 0; j < n; ++j) {
            Machine& sw = make_machine(
                "sw" + std::to_string(l) + "_" + std::to_string(j),
                spec_.cpus);
            row.push_back(&sw);
            for (std::size_t k = 0; k < spec_.up[l - 1]; ++k) {
                NetworkSegment& seg = make_segment(
                    "up" + std::to_string(l) + "_" + std::to_string(j) + "_" +
                        std::to_string(k),
                    spec_.tech);
                grid().attach(sw, seg);
                // Every child of this switch attaches to every parallel
                // uplink; a hop picks k = child_index % up deterministically.
                for (std::size_t c = j * spec_.down[l - 1];
                     c < (j + 1) * spec_.down[l - 1]; ++c)
                    grid().attach(node_at(l - 1, c), seg);
                segrow.push_back(&seg);
            }
        }
        switches_.push_back(std::move(row));
        segs_.push_back(std::move(segrow));
    }
}

Machine& FatTreeZone::gateway() { return switch_at(levels(), 0); }

Machine& FatTreeZone::switch_at(std::size_t level, std::size_t j) {
    return *switches_.at(level - 1).at(j);
}

Machine& FatTreeZone::node_at(std::size_t level, std::size_t idx) {
    return level == 0 ? *members_.at(idx) : *switches_.at(level - 1).at(idx);
}

std::size_t FatTreeZone::ancestor(std::size_t h, std::size_t level) const {
    for (std::size_t i = 0; i < level; ++i) h /= spec_.down[i];
    return h;
}

NetworkSegment& FatTreeZone::upseg(std::size_t level, std::size_t j,
                                   std::size_t k) {
    return *segs_.at(level - 1).at(j * spec_.up[level - 1] + k);
}

std::pair<std::size_t, std::size_t> FatTreeZone::locate(const Machine& m) {
    const std::size_t i = try_member_index(m);
    if (i != npos) return {0, i};
    for (std::size_t l = 0; l < switches_.size(); ++l)
        for (std::size_t j = 0; j < switches_[l].size(); ++j)
            if (switches_[l][j] == &m) return {l + 1, j};
    throw LookupError("machine " + m.name() + " is not in fat tree " +
                            full_name());
}

Path FatTreeZone::path(Machine& a, Machine& b) {
    const auto [la, ja] = locate(a);
    const auto [lb, jb] = locate(b);
    // Ancestor index of node (l, j) at level t >= l.
    const auto anc = [this](std::size_t l, std::size_t j, std::size_t t) {
        for (std::size_t i = l; i < t; ++i) j /= spec_.down[i];
        return j;
    };
    // Meet level: the lowest level where both ancestor chains coincide
    // (exists because the top level has exactly one switch).
    std::size_t m = std::max(la, lb);
    while (anc(la, ja, m) != anc(lb, jb, m)) ++m;

    Path p;
    const auto climb = [&](std::size_t t) { // from level t-1 toward a's chain
        const std::size_t child = anc(la, ja, t - 1);
        const std::size_t par = anc(la, ja, t);
        p.push_back({&upseg(t, par, child % spec_.up[t - 1]), &node_at(t, par)});
    };
    const auto descend = [&](std::size_t t) { // from level t toward b's chain
        const std::size_t child = anc(lb, jb, t - 1);
        const std::size_t par = anc(lb, jb, t);
        p.push_back(
            {&upseg(t, par, child % spec_.up[t - 1]), &node_at(t - 1, child)});
    };
    if (la == m) { // a is the common ancestor: pure descent
        for (std::size_t t = m; t > lb; --t) descend(t);
    } else if (lb == m) { // b is the common ancestor: pure climb
        for (std::size_t t = la + 1; t <= m; ++t) climb(t);
    } else {
        for (std::size_t t = la + 1; t + 1 <= m; ++t) climb(t);
        // Cross at the meet: both level m-1 nodes attach to all parallel
        // uplinks of their shared parent, so one hop crosses the group
        // segment without visiting the level-m switch.
        const std::size_t par = anc(la, ja, m);
        const std::size_t cb = anc(lb, jb, m - 1);
        p.push_back(
            {&upseg(m, par, cb % spec_.up[m - 1]), &node_at(m - 1, cb)});
        for (std::size_t t = m - 1; t > lb; --t) descend(t);
    }
    return p;
}

// --- DragonflyZone ---------------------------------------------------------

DragonflyZone::DragonflyZone(Topology& topo, Zone* parent, std::string name,
                             DragonflySpec spec)
    : Zone(topo, parent, std::move(name), ZoneKind::Dragonfly), spec_(spec) {
    if (spec_.groups == 0 || spec_.routers == 0 || spec_.hosts == 0)
        throw UsageError("dragonfly " + full_name() +
                               ": groups/routers/hosts must all be > 0");
    for (std::size_t g = 0; g < spec_.groups; ++g) {
        NetworkSegment& local =
            make_segment("local" + std::to_string(g), spec_.tech);
        local_segs_.push_back(&local);
        for (std::size_t r = 0; r < spec_.routers; ++r) {
            Machine& rt = make_machine(
                "g" + std::to_string(g) + "_rt" + std::to_string(r),
                spec_.cpus);
            routers_.push_back(&rt);
            grid().attach(rt, local);
            NetworkSegment& hs = make_segment(
                "hseg" + std::to_string(g) + "_" + std::to_string(r),
                spec_.tech);
            host_segs_.push_back(&hs);
            grid().attach(rt, hs);
            for (std::size_t h = 0; h < spec_.hosts; ++h) {
                Machine& m = make_machine("g" + std::to_string(g) + "_r" +
                                              std::to_string(r) + "_h" +
                                              std::to_string(h),
                                          spec_.cpus);
                grid().attach(m, hs);
                add_member(m);
            }
        }
    }
    // All-to-all global links; (g1,g2) lands on router g2 % R in g1 and
    // router g1 % R in g2 — a pure function of the spec.
    for (std::size_t g1 = 0; g1 < spec_.groups; ++g1)
        for (std::size_t g2 = g1 + 1; g2 < spec_.groups; ++g2) {
            NetworkSegment& gl = make_segment(
                "glob" + std::to_string(g1) + "_" + std::to_string(g2),
                spec_.tech);
            grid().attach(router(g1, g2 % spec_.routers), gl);
            grid().attach(router(g2, g1 % spec_.routers), gl);
            globals_[{g1, g2}] = &gl;
        }
}

Machine& DragonflyZone::gateway() { return router(0, 0); }

Machine& DragonflyZone::router(std::size_t group, std::size_t r) {
    return *routers_.at(group * spec_.routers + r);
}

NetworkSegment& DragonflyZone::host_seg(std::size_t group, std::size_t r) {
    return *host_segs_.at(group * spec_.routers + r);
}

NetworkSegment& DragonflyZone::local_seg(std::size_t group) {
    return *local_segs_.at(group);
}

NetworkSegment& DragonflyZone::global_seg(std::size_t g1, std::size_t g2) {
    return *globals_.at({std::min(g1, g2), std::max(g1, g2)});
}

DragonflyZone::Loc DragonflyZone::locate(const Machine& m) {
    const std::size_t i = try_member_index(m);
    if (i != npos) {
        Loc loc;
        loc.host = true;
        loc.g = i / (spec_.routers * spec_.hosts);
        loc.r = i / spec_.hosts % spec_.routers;
        loc.h = i % spec_.hosts;
        return loc;
    }
    for (std::size_t j = 0; j < routers_.size(); ++j)
        if (routers_[j] == &m)
            return {j / spec_.routers, j % spec_.routers, 0, false};
    throw LookupError("machine " + m.name() + " is not in dragonfly " +
                            full_name());
}

Path DragonflyZone::path(Machine& a, Machine& b) {
    const Loc A = locate(a);
    const Loc B = locate(b);
    Path p;
    if (A.host) {
        // Sibling hosts (and a host's own router) share the host segment.
        if (A.g == B.g && A.r == B.r) return {{&host_seg(A.g, A.r), &b}};
        p.push_back({&host_seg(A.g, A.r), &router(A.g, A.r)});
    }
    if (A.g == B.g) {
        if (A.r != B.r)
            p.push_back({&local_seg(A.g), &router(A.g, B.r)});
    } else {
        const std::size_t exit_r = B.g % spec_.routers;
        const std::size_t entry_r = A.g % spec_.routers;
        if (A.r != exit_r)
            p.push_back({&local_seg(A.g), &router(A.g, exit_r)});
        p.push_back({&global_seg(A.g, B.g), &router(B.g, entry_r)});
        if (entry_r != B.r)
            p.push_back({&local_seg(B.g), &router(B.g, B.r)});
    }
    if (B.host) p.push_back({&host_seg(B.g, B.r), &b});
    return p;
}

// --- WanZone ---------------------------------------------------------------

WanZone::WanZone(Topology& topo, Zone* parent, std::string name, NetTech tech)
    : Zone(topo, parent, std::move(name), ZoneKind::Wan) {
    backbone_ = &make_segment("backbone", tech);
}

Machine& WanZone::gateway() {
    if (children_.empty())
        throw UsageError("WAN zone " + full_name() +
                               " has no linked children");
    return children_.front()->gateway();
}

void WanZone::link(Zone& child) {
    // No zone lock here: link runs in the single-threaded build phase, and
    // adopt() takes the topology lock (a LOWER rank) to move the root.
    adopt(child);
    grid().attach(child.gateway(), *backbone_);
}

Zone* WanZone::child_of(Machine& m) {
    for (Zone* c : children_)
        if (c->contains(m)) return c;
    return nullptr;
}

Path WanZone::path(Machine& a, Machine& b) {
    // Held while children are consulted: parent-before-child, ranked by
    // depth, so padico::check verifies the ancestor-walk discipline.
    osal::CheckedLock lk(mu_);
    Zone* ca = child_of(a);
    Zone* cb = child_of(b);
    if (ca == nullptr || cb == nullptr)
        throw LookupError("machine " +
                                (ca == nullptr ? a.name() : b.name()) +
                                " is not under WAN zone " + full_name());
    if (ca == cb) return ca->path(a, b);
    Path p;
    Machine& out_gw = ca->gateway();
    Machine& in_gw = cb->gateway();
    if (&a != &out_gw) p = ca->path(a, out_gw);
    p.push_back({backbone_, &in_gw});
    if (&b != &in_gw) {
        Path tail = cb->path(in_gw, b);
        p.insert(p.end(), tail.begin(), tail.end());
    }
    return p;
}

// --- FlatZone --------------------------------------------------------------

FlatZone::FlatZone(Topology& topo, std::string name)
    : Zone(topo, nullptr, std::move(name), ZoneKind::Flat) {
    // Wrap whatever the grid already holds (hand-written flat XML): every
    // machine is a member, every segment stays in zone 0.
    for (const auto& m : grid().machines()) {
        owned_.push_back(m.get());
        add_member(*m);
    }
    for (const auto& s : grid().segments()) segments_.push_back(s.get());
}

Machine& FlatZone::gateway() {
    if (members_.empty())
        throw UsageError("flat zone " + full_name() + " is empty");
    return *members_.front();
}

Path FlatZone::path(Machine& a, Machine& b) {
    auto segs = grid().common_segments(a, b);
    if (segs.empty())
        throw LookupError("no shared segment between " + a.name() +
                                " and " + b.name());
    return {{segs.front(), &b}};
}

// --- Topology --------------------------------------------------------------

Topology::Topology(Grid& grid) : grid_(&grid) {
    // First topology wins: compat wrappers built later (wrap_flat over an
    // already-zoned grid) must not displace the real zone tree.
    if (grid.topology() == nullptr) grid.set_topology(this);
}

Topology::~Topology() {
    if (grid_->topology() == this) grid_->set_topology(nullptr);
}

Zone& Topology::root() {
    osal::CheckedLock lk(mu_);
    if (root_ == nullptr) throw LookupError("topology has no zones");
    return *root_;
}

void Topology::register_root(Zone& z) {
    osal::CheckedLock lk(mu_);
    root_ = &z;
}

void Topology::index_member(Machine& m, Zone& leaf) {
    osal::CheckedLock lk(mu_);
    leaf_of_[&m] = &leaf;
}

void Topology::check_fresh_name(const std::string& name) {
    if (name.empty() || name.find('/') != std::string::npos ||
        name.find('.') != std::string::npos)
        throw UsageError("bad zone name '" + name +
                               "' (must be non-empty, without '/' or '.')");
    osal::CheckedLock lk(mu_);
    for (const auto& z : zones_)
        if (z->name() == name)
            throw ResourceConflict("zone name already in use: " + name);
}

ClusterZone& Topology::add_cluster(const std::string& name,
                                   const ClusterSpec& s) {
    check_fresh_name(name);
    ClusterZone& z = keep(std::unique_ptr<ClusterZone>(
        new ClusterZone(*this, nullptr, name, s)));
    register_root(z);
    return z;
}

FatTreeZone& Topology::add_fattree(const std::string& name, FatTreeSpec s) {
    check_fresh_name(name);
    FatTreeZone& z = keep(std::unique_ptr<FatTreeZone>(
        new FatTreeZone(*this, nullptr, name, std::move(s))));
    register_root(z);
    return z;
}

DragonflyZone& Topology::add_dragonfly(const std::string& name,
                                       DragonflySpec s) {
    check_fresh_name(name);
    DragonflyZone& z = keep(std::unique_ptr<DragonflyZone>(
        new DragonflyZone(*this, nullptr, name, s)));
    register_root(z);
    return z;
}

WanZone& Topology::add_wan(const std::string& name, NetTech tech) {
    check_fresh_name(name);
    WanZone& z = keep(
        std::unique_ptr<WanZone>(new WanZone(*this, nullptr, name, tech)));
    register_root(z);
    return z;
}

FlatZone& Topology::wrap_flat(const std::string& name) {
    check_fresh_name(name);
    if (root_ != nullptr)
        throw UsageError(
            "wrap_flat on a topology that already has zones");
    FlatZone& z = keep(std::unique_ptr<FlatZone>(new FlatZone(*this, name)));
    register_root(z);
    return z;
}

Zone* Topology::find_zone(const std::string& full_name) noexcept {
    osal::CheckedLock lk(mu_);
    for (const auto& z : zones_)
        if (z->full_name() == full_name) return z.get();
    // Fall back to the bare leaf name when it is unambiguous, so DSL
    // users can say zone("a") without spelling the adopted path
    // "core/a". Two zones with the same leaf name -> no match.
    Zone* hit = nullptr;
    for (const auto& z : zones_) {
        if (z->name() != full_name) continue;
        if (hit != nullptr) return nullptr;
        hit = z.get();
    }
    return hit;
}

Zone& Topology::zone(const std::string& full_name) {
    Zone* z = find_zone(full_name);
    if (z == nullptr) throw LookupError("no such zone: " + full_name);
    return *z;
}

Zone* Topology::zone_of(const Machine& m) {
    osal::CheckedLock lk(mu_);
    auto it = leaf_of_.find(&m);
    if (it != leaf_of_.end()) return it->second;
    // Infrastructure machines (switches, routers, hubs) are not members;
    // resolve still needs their zone, so fall back to ownership.
    for (const auto& z : zones_)
        for (const Machine* x : z->owned_)
            if (x == &m) return z.get();
    return nullptr;
}

std::size_t Topology::zone_count() {
    osal::CheckedLock lk(mu_);
    return zones_.size();
}

std::vector<Zone*> Topology::zones() {
    osal::CheckedLock lk(mu_);
    std::vector<Zone*> out;
    out.reserve(zones_.size());
    for (const auto& z : zones_) out.push_back(z.get());
    return out;
}

std::size_t Topology::route_entries_upper_bound(const Machine& m) {
    std::size_t n = 0;
    for (const Adapter* a : m.adapters())
        n += const_cast<Adapter*>(a)->segment().attached();
    return n;
}

Path Topology::resolve(Machine& a, Machine& b) {
    if (&a == &b) return {};
    Zone* za = zone_of(a);
    Zone* zb = zone_of(b);
    if (za == nullptr)
        throw LookupError("machine not in topology: " + a.name());
    if (zb == nullptr)
        throw LookupError("machine not in topology: " + b.name());
    if (za == zb) return za->path(a, b);
    // Shared-prefix walk: collect a's ancestor chain, then walk b's chain
    // upward until it first intersects — the lowest common ancestor.
    std::vector<const Zone*> chain;
    for (Zone* z = za; z != nullptr; z = z->parent()) chain.push_back(z);
    Zone* lca = nullptr;
    for (Zone* z = zb; z != nullptr && lca == nullptr; z = z->parent())
        if (std::find(chain.begin(), chain.end(), z) != chain.end()) lca = z;
    if (lca == nullptr)
        throw LookupError("no common ancestor zone for " + a.name() +
                                " and " + b.name());
    return lca->path(a, b);
}

Hop Topology::next_hop(Machine& at, Machine& dst) {
    Path p = resolve(at, dst);
    if (p.empty())
        throw UsageError("next_hop: already at " + dst.name());
    return p.front();
}

// --- multi-hop forwarding helpers -----------------------------------------

util::Message wrap_routed(ProcessId final_dst, util::Message payload) {
    util::ByteBuf hdr;
    const util::byte b[4] = {
        static_cast<util::byte>(final_dst & 0xff),
        static_cast<util::byte>(final_dst >> 8 & 0xff),
        static_cast<util::byte>(final_dst >> 16 & 0xff),
        static_cast<util::byte>(final_dst >> 24 & 0xff),
    };
    hdr.append(b, sizeof b);
    util::Message m = util::to_message(std::move(hdr));
    m.append(payload);
    return m;
}

Routed unwrap_routed(const util::Message& m) {
    if (m.size() < 4) throw ProtocolError("routed frame too short");
    util::byte b[4];
    m.copy_out(0, b, sizeof b);
    Routed r;
    r.final_dst = static_cast<ProcessId>(b[0]) |
                  static_cast<ProcessId>(b[1]) << 8 |
                  static_cast<ProcessId>(b[2]) << 16 |
                  static_cast<ProcessId>(b[3]) << 24;
    r.payload = m.slice(4, m.size() - 4);
    return r;
}

SimTime send_routed(Topology& topo, Process& src, Port& port, ProcessId dst,
                    ChannelId ch, util::Message payload) {
    Grid& grid = topo.grid();
    Machine& dst_machine = grid.wait_process(dst).machine();
    SimTime t;
    if (&src.machine() == &dst_machine) {
        t = port.send(dst, ch, std::move(payload), src.now());
    } else {
        const Path p = topo.resolve(src.machine(), dst_machine);
        if (p.front().seg != &port.adapter().segment()) {
            // The route leaves through another of this machine's NICs
            // (e.g. a gateway member sending out its backbone adapter).
            // Hand the frame to the local relay, which holds ports on
            // every NIC and will pick the right one.
            const ProcessId relay =
                grid.wait_service("relay@" + src.machine().name());
            t = port.send(relay, ch, wrap_routed(dst, std::move(payload)),
                          src.now());
        } else if (p.size() == 1) {
            t = port.send(dst, ch, std::move(payload), src.now());
        } else {
            const ProcessId relay =
                grid.wait_service("relay@" + p.front().to->name());
            t = port.send(relay, ch, wrap_routed(dst, std::move(payload)),
                          src.now());
        }
    }
    src.clock().set(t);
    return t;
}

std::vector<PortRef> open_relay_ports(Topology& topo, Process& self) {
    std::vector<PortRef> ports;
    for (Adapter* a : self.machine().adapters())
        ports.push_back(a->open(self, "relay"));
    topo.grid().register_service("relay@" + self.machine().name(),
                                 self.id());
    return ports;
}

void relay_forward(Topology& topo, Process& self,
                   std::vector<PortRef>& ports, Packet&& pkt) {
    Grid& grid = topo.grid();
    self.clock().merge(pkt.deliver_time); // Lamport merge, then send
    Routed r = unwrap_routed(pkt.payload);
    Machine& dst_machine = grid.wait_process(r.final_dst).machine();
    if (&dst_machine == &self.machine()) {
        // Deliver to a process on THIS machine: the terminal relay of a
        // path ending at a gateway-resident endpoint. The process's port
        // may be on any local segment (and may not be open yet — boot
        // race), so poll the NICs until it appears.
        for (;;) {
            for (auto& p : ports)
                if (p->adapter().segment().port_for(r.final_dst) !=
                    nullptr) {
                    self.clock().set(p->send(r.final_dst, pkt.channel,
                                             std::move(r.payload),
                                             self.now()));
                    return;
                }
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    }
    const Hop hop = topo.next_hop(self.machine(), dst_machine);
    Port* out = nullptr;
    for (auto& p : ports)
        if (&p->adapter().segment() == hop.seg) {
            out = p.get();
            break;
        }
    if (out == nullptr)
        throw LookupError("relay " + self.machine().name() +
                                " has no port on " + hop.seg->name());
    SimTime t;
    if (hop.to == &dst_machine &&
        (hop.seg->port_for(r.final_dst) != nullptr ||
         !grid.try_lookup("relay@" + hop.to->name()))) {
        // Last hop and the endpoint listens on this very segment — or
        // will: with no relay on the destination machine to hand over
        // to, block in send until the port opens (boot race).
        t = out->send(r.final_dst, pkt.channel, std::move(r.payload),
                      self.now());
    } else {
        // Still in flight: either toward another zone, or toward the
        // destination machine but addressed to a port on one of its
        // OTHER segments (endpoint on a gateway) — its local relay
        // finishes the job. Forward the frame as-is.
        const ProcessId next = grid.wait_service("relay@" + hop.to->name());
        t = out->send(next, pkt.channel, std::move(pkt.payload),
                      self.now());
    }
    self.clock().set(t);
}

void relay_loop(Topology& topo, Process& self, std::atomic<bool>& stop) {
    std::vector<PortRef> ports = open_relay_ports(topo, self);
    for (;;) {
        bool got = false;
        for (auto& p : ports)
            while (auto pkt = p->try_recv()) {
                got = true;
                relay_forward(topo, self, ports, std::move(*pkt));
            }
        if (got) continue;
        if (stop.load(std::memory_order_acquire)) {
            bool pending = false;
            for (auto& p : ports) pending = pending || p->pending() != 0;
            if (!pending) break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

} // namespace padico::fabric
