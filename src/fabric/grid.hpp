#pragma once
/// \file grid.hpp
/// The simulated computational grid: machines, network segments, adapters
/// (NICs) and processes. This module substitutes for the paper's physical
/// testbed. Each simulated process is a real std::thread; data really moves
/// through adapter queues; time is virtual (see clock.hpp, netmodel.hpp).
///
/// Conflict semantics reproduce §4.3.1: SAN adapters (Myrinet/BIP, SCI) are
/// exclusive — a single software owner per NIC. Opening one twice with
/// different owner tags throws ResourceConflict. PadicoTM's arbitration
/// layer is the component that opens each adapter once and multiplexes it.

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fabric/busylist.hpp"
#include "fabric/clock.hpp"
#include "fabric/netmodel.hpp"
#include "fabric/packet.hpp"
#include "osal/checked.hpp"
#include "osal/lockrank.hpp"
#include "osal/queue.hpp"
#include "util/error.hpp"

namespace padico::fabric {

class Machine;
class NetworkSegment;
class Adapter;
class Port;
class Process;
class Grid;
class Topology;

/// Routing-zone identifier (see fabric/topology.hpp). Zone 0 is the
/// implicit flat zone every segment starts in; Topology assigns real ids
/// via Grid::register_zone and tags the segments it wires.
using ZoneId = std::uint32_t;

/// How timing bookkeeping is serialized on a segment.
///
/// kSharded (the default) models a *switched* fabric: each transfer books
/// wire time under two per-NIC-direction locks (tx on the sender adapter,
/// rx on the destination adapter, acquired in a fixed global order), so
/// transfers between disjoint machine pairs never contend on the wall
/// clock. kSegmentGlobal keeps the historical data plane — one segment
/// lock, linear BusyList scans, route lookups under route_mu_ — both to
/// model a genuinely shared medium (a hub or bus, where one global
/// arbiter is the honest picture of the hardware) and as the A/B
/// reference mode for bench_fabric_scale. Serialized virtual completion
/// times are bit-identical across modes; only wall-clock cost differs.
enum class TimingMode { kSharded, kSegmentGlobal };

/// Observable data-plane counters of one NIC (both directions).
struct AdapterCounters {
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t rx_packets = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t tx_span_high_water = 0; ///< most BusyList spans held at once
    std::uint64_t rx_span_high_water = 0;
    std::uint64_t tx_pruned_spans = 0; ///< spans retired by watermark pruning
    std::uint64_t rx_pruned_spans = 0;
};

/// One NIC endpoint opened by a process. Owns the receive queue.
class Port {
public:
    Port(const Port&) = delete;
    Port& operator=(const Port&) = delete;

    Adapter& adapter() noexcept { return *adapter_; }
    Process& owner() noexcept { return *owner_; }

    /// Transmit \p payload to process \p dst on this segment.
    /// \p sender_now is the sender's current virtual time; the return value
    /// is the virtual time at which the send completes on the sender side
    /// (synchronous submission at wire rate). The packet is stamped with
    /// its modeled delivery time and enqueued at the destination port.
    /// Contract: \p sender_now must be at or after the owning process's
    /// current virtual clock — the fabric retires reservation history
    /// behind the minimum clock on the segment (see BusyList::prune), so
    /// booking into the past is not allowed.
    SimTime send(ProcessId dst, ChannelId channel, util::Message payload,
                 SimTime sender_now, std::uint32_t flags = 0);

    /// Blocking receive of the next packet, in enqueue order.
    /// Returns nullopt once the port is closed and drained.
    std::optional<Packet> recv();

    /// Non-blocking receive.
    std::optional<Packet> try_recv();

    /// Blocking receive of the next packet on a specific channel.
    std::optional<Packet> recv_on(ChannelId channel);

    /// Blocking receive of the next packet on \p channel from \p src.
    std::optional<Packet> recv_from(ProcessId src, ChannelId channel);

    /// Non-blocking variant of recv_from.
    std::optional<Packet> try_recv_from(ProcessId src, ChannelId channel);

    std::size_t pending() const { return rx_.size(); }

    /// Stop delivery: wakes all blocked receivers, which drain remaining
    /// packets and then observe end-of-stream. Used for ordered shutdown of
    /// progression threads before the port is released.
    void close_rx() { rx_.close(); }

private:
    friend class Adapter;
    Port(Adapter& a, Process& p) : adapter_(&a), owner_(&p) {}

    Adapter* adapter_;
    Process* owner_;
    std::string owner_tag_;
    int refcount_ = 0;
    osal::BlockingQueue<Packet> rx_;
};

/// RAII handle returned by Adapter::open; releases on destruction.
class PortRef {
public:
    PortRef() = default;
    PortRef(Adapter* a, Port* p) : adapter_(a), port_(p) {}
    PortRef(PortRef&& o) noexcept { swap(o); }
    PortRef& operator=(PortRef&& o) noexcept {
        release();
        swap(o);
        return *this;
    }
    PortRef(const PortRef&) = delete;
    PortRef& operator=(const PortRef&) = delete;
    ~PortRef() { release(); }

    explicit operator bool() const noexcept { return port_ != nullptr; }
    Port* operator->() const noexcept { return port_; }
    Port& operator*() const noexcept { return *port_; }
    Port* get() const noexcept { return port_; }

    void release();

private:
    void swap(PortRef& o) noexcept {
        std::swap(adapter_, o.adapter_);
        std::swap(port_, o.port_);
    }
    Adapter* adapter_ = nullptr;
    Port* port_ = nullptr;
};

/// A NIC: the attachment of one machine to one network segment.
class Adapter {
public:
    Adapter(Machine& m, NetworkSegment& s) : machine_(&m), segment_(&s) {}
    Adapter(const Adapter&) = delete;
    Adapter& operator=(const Adapter&) = delete;

    Machine& machine() noexcept { return *machine_; }
    NetworkSegment& segment() noexcept { return *segment_; }

    /// Open the NIC for \p owner_tag (the name of the software component
    /// taking control, e.g. "mpich-raw" or "padicotm"). On an exclusive
    /// segment, a second open by a *different* tag or process throws
    /// ResourceConflict — this is the raw-driver conflict PadicoTM solves.
    PortRef open(Process& p, const std::string& owner_tag);

    /// Current owner tag, empty if unopened (for diagnostics/tests).
    std::string owner_tag() const;

    bool is_open() const;

    /// Snapshot of this NIC's data-plane counters (packets/bytes per
    /// direction, BusyList span high-water marks, pruned spans).
    AdapterCounters counters() const;

private:
    friend class Port;
    friend class PortRef;
    friend class NetworkSegment;
    friend class Grid;

    void release(Port* port);

    /// Modeled hardware timing state of one NIC direction. `mu` alone
    /// guards `busy` in sharded mode; the legacy segment-global mode holds
    /// the segment's time_mu_ on top (the shard locks are then uncontended
    /// but keep `busy` under a single guard for counters()).
    /// Packet/byte counters are lock-free. The shard lock's rank is
    /// assigned by Grid::attach (lockrank::shard_rank over order_), so the
    /// historically comment-only acquisition order is enforced under
    /// PADICO_CHECK=ON.
    struct DirShard {
        mutable osal::CheckedMutex mu;
        BusyList busy;
        std::atomic<std::uint64_t> packets{0};
        std::atomic<std::uint64_t> bytes{0};
    };

    Machine* machine_;
    NetworkSegment* segment_;
    mutable osal::CheckedMutex mu_{lockrank::kFabricAdapter,
                                   "fabric.adapter"};
    std::map<ProcessId, std::unique_ptr<Port>> ports_;
    DirShard tx_shard_;
    DirShard rx_shard_;
    std::uint64_t order_ = 0; ///< global lock-ordering rank (set by attach)
    std::atomic<std::uint64_t> send_tick_{0}; ///< drives periodic pruning
};

/// A physical network: a set of adapters plus the link cost model.
class NetworkSegment {
public:
    NetworkSegment(Grid& g, std::string name, LinkParams params)
        : grid_(&g), name_(std::move(name)), params_(params) {}
    NetworkSegment(const NetworkSegment&) = delete;
    NetworkSegment& operator=(const NetworkSegment&) = delete;

    const std::string& name() const noexcept { return name_; }
    const LinkParams& params() const noexcept { return params_; }
    Grid& grid() noexcept { return *grid_; }

    /// Technology class, when the segment was built from one.
    std::optional<NetTech> tech() const noexcept { return tech_; }
    void set_tech(NetTech t) noexcept { tech_ = t; }

    /// Routing zone this segment's wiring belongs to (0 = flat/unzoned).
    /// Set once by the Topology that generates the segment, before traffic.
    /// \p wan marks segments owned by a WAN zone, the classification the
    /// per-zone-level traffic counters use (Runtime::stats).
    ZoneId zone_id() const noexcept { return zone_id_; }
    const std::string& zone_name() const noexcept { return zone_name_; }
    void set_zone(ZoneId id, std::string name, bool wan = false) {
        zone_id_ = id;
        zone_name_ = std::move(name);
        wan_ = wan;
    }

    /// True when traffic on this segment crosses the wide area: the owning
    /// zone is a WAN zone, or — on hand-built grids with no Topology — the
    /// segment was built from the Wan technology class.
    bool is_wan() const noexcept { return wan_ || tech_ == NetTech::Wan; }

    /// Number of machines attached (NICs on this segment) — the upper
    /// bound of this segment's route-table population.
    std::size_t attached() const noexcept {
        return attached_.load(std::memory_order_relaxed);
    }

    /// Mark this segment as crossing untrusted infrastructure (paper §2
    /// "communication security"); WANs default to insecure already.
    void set_secure(bool secure) { params_.secure = secure; }

    /// Timing serialization mode (see TimingMode). Switch only while the
    /// segment is quiescent (no in-flight sends).
    TimingMode timing_mode() const noexcept {
        return timing_mode_.load(std::memory_order_acquire);
    }
    void set_timing_mode(TimingMode m) noexcept {
        timing_mode_.store(m, std::memory_order_release);
    }

    /// The port of process \p pid on this segment, or nullptr.
    Port* port_for(ProcessId pid);

    /// Read-mostly route lookup for the per-packet data plane: consults a
    /// generation-stamped immutable route table without taking route_mu_;
    /// falls back to the blocking wait_port_for slow path on generation
    /// mismatch or unknown peer (the slow path also refreshes the table's
    /// stamp). Hit/miss counts are exported via route_fast_hits/misses.
    Port* lookup_port(ProcessId pid);

    std::uint64_t route_fast_hits() const noexcept {
        return route_fast_hits_.load(std::memory_order_relaxed);
    }
    std::uint64_t route_fast_misses() const noexcept {
        return route_fast_misses_.load(std::memory_order_relaxed);
    }

    /// Superseded route tables freed at a quiescent point (see
    /// publish_routes); grows with route churn, stays 0 on a quiet segment.
    std::uint64_t route_tables_retired() const noexcept {
        return route_tables_retired_.load(std::memory_order_relaxed);
    }
    /// Tables currently kept alive (the live one plus any superseded ones
    /// whose quiescent point has not been reached yet).
    std::size_t route_tables_retained();

    /// Point-in-time copy of the routes open on this segment, stamped with
    /// the grid route generation it was taken at: a consumer holding a
    /// snapshot knows it is current as long as Grid::route_generation()
    /// has not moved.
    struct RouteSnapshot {
        std::uint64_t generation = 0;
        std::vector<std::pair<ProcessId, Port*>> routes;
    };
    RouteSnapshot route_snapshot();

    /// Like port_for, but when the process's machine IS attached to this
    /// segment, blocks until the process opens its port (processes boot
    /// asynchronously; a sender may race a slower peer's startup). Returns
    /// nullptr only when the peer is topologically unreachable.
    Port* wait_port_for(ProcessId pid);

private:
    friend class Adapter;
    friend class Port;
    friend class Grid;

    /// Immutable point-in-time route table, readable without route_mu_.
    /// Stamped with the segment's ZONE route generation observed BEFORE
    /// the copy, so a concurrent change can only make the stamp stale,
    /// never the reverse (same protocol as RouteSnapshot). Scoping the
    /// stamp to the zone means port churn in another zone does not
    /// invalidate this segment's fast path (flat grids put every segment
    /// in zone 0, which degenerates to the old global behavior).
    struct RouteTable {
        std::uint64_t generation = 0;
        std::vector<std::pair<ProcessId, Port*>> entries; ///< sorted by pid
        /// Virtual-time quiescence gate, set when the table is superseded:
        /// the max owner clock on the segment at supersession. No reader
        /// can still hold this table once the min owner clock has passed
        /// it (a sending process's clock is frozen at or below this value
        /// for the duration of its lookup) — same min-owner-clock horizon
        /// trick as BusyList pruning.
        SimTime retire_horizon = 0;
        bool superseded = false;
    };

    /// Rebuild and atomically publish the lock-free route table, then
    /// retire superseded tables whose quiescent point has passed.
    void publish_routes();

    /// Free superseded tables (all but the live one) that are provably
    /// unreferenced. Two conditions, both required: the virtual-time
    /// horizon has passed (or the segment has no port owners at all), and
    /// both reader slots sample zero. The horizon alone is not a
    /// happens-before proof — a sibling thread of the same process may
    /// advance its clock mid-lookup — so the reader counters close that
    /// hole; the horizon keeps retirement aligned with the BusyList
    /// pruning discipline and cheap to evaluate. Caller holds route_mu_.
    void retire_tables_locked();

    /// Minimum virtual clock over the processes holding ports on this
    /// segment — the watermark behind which BusyList spans can be retired
    /// exactly (no later reservation can start before it, given that
    /// senders pass their current clock as sender_now).
    SimTime min_route_owner_clock();

    Grid* grid_;
    std::string name_;
    LinkParams params_;
    std::optional<NetTech> tech_;
    ZoneId zone_id_ = 0;
    std::string zone_name_;
    bool wan_ = false;
    std::atomic<std::size_t> attached_{0};
    osal::CheckedMutex route_mu_{lockrank::kFabricRoute, "fabric.route"};
    osal::CheckedCondVar route_cv_;
    std::map<ProcessId, Port*> routes_;
    std::atomic<TimingMode> timing_mode_{TimingMode::kSharded};
    std::atomic<const RouteTable*> route_table_{nullptr};
    /// Retained tables, newest (live) last (guarded by route_mu_).
    /// Superseded tables stay alive until retire_tables_locked proves no
    /// lock-free reader can still hold them, then are freed; the steady
    /// state is one or two tables, not one per churn event.
    std::vector<std::unique_ptr<RouteTable>> route_tables_;
    /// In-flight lock-free readers, two slots selected by reader_parity_.
    /// The parity flips at every publish so steady traffic migrates to the
    /// other slot and the old one can drain; sampling BOTH slots at zero
    /// (after a supersession) proves no superseded table is referenced.
    mutable std::atomic<std::uint64_t> table_readers_[2] = {{0}, {0}};
    std::atomic<std::uint64_t> reader_parity_{0};
    std::atomic<std::uint64_t> route_tables_retired_{0};
    std::atomic<std::uint64_t> route_fast_hits_{0};
    std::atomic<std::uint64_t> route_fast_misses_{0};
    osal::CheckedMutex time_mu_{
        lockrank::kFabricTime,
        "fabric.time"}; ///< serializes bookkeeping in kSegmentGlobal mode
};

/// A host in the grid.
class Machine {
public:
    Machine(Grid& g, std::string name, int cpus)
        : grid_(&g), name_(std::move(name)), cpus_(cpus) {}
    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    const std::string& name() const noexcept { return name_; }
    int cpus() const noexcept { return cpus_; }
    Grid& grid() noexcept { return *grid_; }

    /// Free-form attributes used by discovery (owner=companyX, site=rennes).
    void set_attr(const std::string& key, const std::string& value) {
        attrs_[key] = value;
    }
    std::string attr_or(const std::string& key, const std::string& dflt) const {
        auto it = attrs_.find(key);
        return it == attrs_.end() ? dflt : it->second;
    }
    const std::map<std::string, std::string>& attrs() const noexcept {
        return attrs_;
    }

    const std::vector<Adapter*>& adapters() const noexcept { return adapters_; }

    /// NIC of this machine on \p seg, or nullptr if not attached.
    Adapter* adapter_on(const NetworkSegment& seg) const;

private:
    friend class Grid;
    Grid* grid_;
    std::string name_;
    int cpus_;
    std::map<std::string, std::string> attrs_;
    std::vector<Adapter*> adapters_;
};

/// A simulated OS process: a thread with a virtual clock, running on a
/// machine. All Padico layers take the Process as their execution context.
class Process {
public:
    ProcessId id() const noexcept { return id_; }
    Machine& machine() noexcept { return *machine_; }
    const Machine& machine() const noexcept { return *machine_; }
    Grid& grid() noexcept;
    VirtualClock& clock() noexcept { return clock_; }

    /// Charge \p d of local computation to the virtual clock.
    void compute(SimTime d) { clock_.advance(d); }
    SimTime now() const noexcept { return clock_.now(); }

    std::string name() const;

    /// The process bound to the calling thread (set by Grid::spawn).
    static Process& current();
    static Process* current_or_null() noexcept;

    /// Bind the calling thread to \p p (nullptr to unbind). Worker threads
    /// spawned by middleware (ORB connection workers, progression loops)
    /// belong to the process that created them and must call this so that
    /// Process::current() works there too.
    static void bind_to_thread(Process* p) noexcept;

private:
    friend class Grid;
    Process(Grid& g, Machine& m, ProcessId id)
        : grid_(&g), machine_(&m), id_(id) {}

    Grid* grid_;
    Machine* machine_;
    ProcessId id_;
    VirtualClock clock_;
    std::thread thread_;
    std::exception_ptr failure_;
};

/// The whole simulated grid plus its bootstrap name service.
class Grid {
public:
    Grid() = default;
    ~Grid();
    Grid(const Grid&) = delete;
    Grid& operator=(const Grid&) = delete;

    // --- topology construction -----------------------------------------
    Machine& add_machine(const std::string& name, int cpus = 2);
    NetworkSegment& add_segment(const std::string& name, NetTech tech);
    NetworkSegment& add_segment(const std::string& name, LinkParams params);
    Adapter& attach(Machine& m, NetworkSegment& s);

    Machine& machine(const std::string& name);
    NetworkSegment& segment(const std::string& name);
    /// Like machine()/segment() but return nullptr instead of throwing
    /// (topology builders use these to reject duplicate names up front).
    Machine* find_machine(const std::string& name) noexcept;
    NetworkSegment* find_segment(const std::string& name) noexcept;
    const std::vector<std::unique_ptr<Machine>>& machines() const noexcept {
        return machines_;
    }
    const std::vector<std::unique_ptr<NetworkSegment>>& segments()
        const noexcept {
        return segments_;
    }

    // --- processes -------------------------------------------------------
    /// Start a process on \p m running \p body on its own thread.
    Process& spawn(Machine& m, std::function<void(Process&)> body);

    /// Join every spawned process; rethrows the first failure, if any.
    void join_all();

    Process& process(ProcessId id);

    /// Like process(), but blocks until a process with that id has been
    /// spawned (peers boot asynchronously).
    Process& wait_process(ProcessId id);

    // --- bootstrap name service ------------------------------------------
    /// Stable id for a named logical channel (grid-wide agreement).
    ChannelId channel_id(const std::string& name);

    /// Publish/lookup service endpoints (host:port analogue).
    void register_service(const std::string& name, ProcessId pid);
    /// Blocks until the service is registered.
    ProcessId wait_service(const std::string& name);
    std::optional<ProcessId> try_lookup(const std::string& name);

    // --- topology queries --------------------------------------------------
    /// Segments both machines are attached to, best (highest attainable
    /// bandwidth) first. Empty when the machines share no network.
    std::vector<NetworkSegment*> common_segments(const Machine& a,
                                                 const Machine& b);

    /// Monotonic counter bumped whenever a port opens or closes anywhere
    /// on the grid. Layers that cache routing decisions (e.g. the
    /// runtime's destination→segment cache) stamp entries with this and
    /// revalidate on mismatch instead of re-deriving per message.
    std::uint64_t route_generation() const noexcept {
        return route_gen_.load(std::memory_order_acquire);
    }

    // --- routing zones ----------------------------------------------------
    /// Hard cap on zone count: the per-zone generation slots are a fixed
    /// array so data-plane reads stay lock-free while a Topology grows.
    static constexpr std::size_t kMaxZones = 4096;

    /// Allocate a fresh zone id (> 0). Called by fabric::Topology for each
    /// zone it creates; throws UsageError past kMaxZones.
    ZoneId register_zone();

    /// Per-zone route generation: bumped only when a port opens or closes
    /// on a segment of that zone. Flat grids keep every segment in zone 0,
    /// where this counts exactly what route_generation() counts.
    std::uint64_t zone_route_generation(ZoneId z) const noexcept {
        return zone_gens_[z % kMaxZones].load(std::memory_order_acquire);
    }

    /// Zone-scoped invalidation stamp for routes toward \p m: the sum of
    /// the zone generations of the segments \p m is attached to. Any port
    /// of a process on \p m lives on one of those segments, so the stamp
    /// moves whenever such a port opens or closes — but NOT when churn
    /// happens in unrelated zones. Monotonic (each term is), so equality
    /// means "nothing relevant changed".
    std::uint64_t machine_route_stamp(const Machine& m) const noexcept;

    /// The Topology describing this grid's zone tree, or nullptr on flat
    /// hand-built grids. Registered by the Topology constructor (first one
    /// wins), cleared by its destructor; non-owning. Consumers — e.g. the
    /// MPI layer's communicator cluster map — treat nullptr as "flat".
    Topology* topology() const noexcept {
        return topology_.load(std::memory_order_acquire);
    }
    void set_topology(Topology* t) noexcept {
        topology_.store(t, std::memory_order_release);
    }

private:
    friend class Adapter;
    friend class NetworkSegment;
    void bump_route_generation(ZoneId zone) noexcept {
        route_gen_.fetch_add(1, std::memory_order_acq_rel);
        zone_gens_[zone % kMaxZones].fetch_add(1, std::memory_order_acq_rel);
    }

    std::atomic<std::uint64_t> route_gen_{0};
    std::atomic<Topology*> topology_{nullptr};
    std::atomic<std::uint64_t> zone_gens_[kMaxZones] = {};
    std::atomic<ZoneId> next_zone_{1};
    std::vector<std::unique_ptr<Machine>> machines_;
    std::vector<std::unique_ptr<NetworkSegment>> segments_;
    std::vector<std::unique_ptr<Adapter>> adapters_;

    mutable osal::CheckedMutex proc_mu_{lockrank::kFabricProcs,
                                        "fabric.procs"};
    osal::CheckedCondVar proc_cv_;
    std::vector<std::unique_ptr<Process>> processes_;

    osal::CheckedMutex name_mu_{lockrank::kFabricNames, "fabric.names"};
    osal::CheckedCondVar name_cv_;
    std::map<std::string, ChannelId> channels_;
    ChannelId next_channel_ = 1;
    std::map<std::string, ProcessId> services_;
};

/// Convenience: spawn one process per entry of \p hosts, passing SPMD rank
/// and size to the body; processes are joined by grid.join_all().
void run_spmd(Grid& grid, const std::vector<Machine*>& hosts,
              const std::function<void(Process&, int rank, int size)>& body);

} // namespace padico::fabric
