#include "fabric/grid.hpp"

#include <algorithm>
#include <limits>

#include "util/cache.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace padico::fabric {

namespace {
thread_local Process* tls_current_process = nullptr;

/// Every kPruneInterval-th send through an adapter retires BusyList spans
/// behind the segment's minimum virtual clock (sharded mode only — the
/// legacy mode reproduces the historical never-forget behavior).
constexpr std::uint64_t kPruneInterval = 64;

/// Receive-side Lamport/addressing audit, applied by every recv variant.
std::optional<Packet> audit_rx([[maybe_unused]] ProcessId owner,
                               std::optional<Packet> p) {
#ifdef PADICO_CHECK_ENABLED
    if (p.has_value()) {
        PADICO_AUDIT(p->deliver_time >= p->check_sent_at,
                     "packet delivered before it was sent");
        PADICO_AUDIT(p->dst == owner,
                     "packet dequeued by a port it was not addressed to");
    }
#endif
    return p;
}
} // namespace

// --------------------------------------------------------------------------
// Port

SimTime Port::send(ProcessId dst, ChannelId channel, util::Message payload,
                   SimTime sender_now, std::uint32_t flags) {
    NetworkSegment& seg = *adapter_->segment_;
    const TimingMode mode = seg.timing_mode();
    Port* dst_port = mode == TimingMode::kSharded ? seg.lookup_port(dst)
                                                  : seg.wait_port_for(dst);
    if (dst_port == nullptr)
        throw LookupError("process " + std::to_string(dst) +
                          " unreachable on segment " + seg.name());

    const std::uint64_t bytes = payload.size();
    Packet pkt;
    pkt.channel = channel;
    pkt.src = owner_->id();
    pkt.dst = dst;
    pkt.flags = flags;
    pkt.via = &seg;
    pkt.payload = std::move(payload);

    Adapter& dst_nic = *dst_port->adapter_;
    const double eff_bw = attainable_mb(seg.params());
    const SimTime xmit = transfer_time(bytes, eff_bw);
    SimTime start, tx_done;
    if (mode == TimingMode::kSegmentGlobal) {
        // Legacy/shared-medium data plane: one lock for the whole segment,
        // linear BusyList scans, no pruning. The shard locks are taken
        // under it only so `busy` stays under its own guard for
        // counters(); they cannot contend here — but they must still be
        // acquired in the same fixed global order as the sharded branch
        // (std::scoped_lock's unspecified internal order registers as a
        // rank inversion under bidirectional traffic).
        Adapter::DirShard& tx = adapter_->tx_shard_;
        Adapter::DirShard& rx = dst_nic.rx_shard_;
        const std::uint64_t tx_rank = adapter_->order_ * 2;
        const std::uint64_t rx_rank = dst_nic.order_ * 2 + 1;
        osal::CheckedLock lk(seg.time_mu_);
        osal::CheckedUniqueLock first(tx_rank < rx_rank ? tx.mu : rx.mu);
        osal::CheckedUniqueLock second(tx_rank < rx_rank ? rx.mu : tx.mu);
        start = tx.busy.reserve_linear(sender_now, xmit);
        tx_done = start + xmit;
        const SimTime rx_start =
            rx.busy.reserve_linear(start + seg.params().latency, xmit);
        pkt.deliver_time = rx_start + xmit;
    } else {
        const bool do_prune =
            (adapter_->send_tick_.fetch_add(1, std::memory_order_relaxed) +
             1) % kPruneInterval == 0;
        // The watermark is derived before the timing locks (it takes
        // route_mu_); pruning with it is exact, so the prune cadence never
        // moves a virtual time.
        const SimTime horizon = do_prune ? seg.min_route_owner_clock() : 0;

        // tx lock on the sender NIC, rx lock on the destination NIC, in
        // the fixed global order assigned at attach time (tx ranks even,
        // rx ranks odd, so the two are never equal and disjoint machine
        // pairs on a switched segment never contend).
        Adapter::DirShard& tx = adapter_->tx_shard_;
        Adapter::DirShard& rx = dst_nic.rx_shard_;
        const std::uint64_t tx_rank = adapter_->order_ * 2;
        const std::uint64_t rx_rank = dst_nic.order_ * 2 + 1;
        osal::CheckedUniqueLock first(tx_rank < rx_rank ? tx.mu : rx.mu);
        osal::CheckedUniqueLock second(tx_rank < rx_rank ? rx.mu : tx.mu);
        if (do_prune) {
            tx.busy.prune(horizon);
            rx.busy.prune(horizon);
        }
        start = tx.busy.reserve(sender_now, xmit);
        tx_done = start + xmit;
        const SimTime rx_start =
            rx.busy.reserve(start + seg.params().latency, xmit);
        pkt.deliver_time = rx_start + xmit;
    }
    // Lamport discipline of the virtual wire: a transfer can be queued
    // behind earlier traffic, never started before its submission, and its
    // delivery happens-after its transmission completes.
    PADICO_AUDIT(start >= sender_now,
                 "tx reservation booked before the sender's clock");
    PADICO_AUDIT(tx_done == start + xmit, "tx completion != start + xmit");
    PADICO_AUDIT(pkt.deliver_time >= tx_done,
                 "delivery modeled before tx completion");
#ifdef PADICO_CHECK_ENABLED
    pkt.check_sent_at = sender_now;
#endif
    adapter_->tx_shard_.packets.fetch_add(1, std::memory_order_relaxed);
    adapter_->tx_shard_.bytes.fetch_add(bytes, std::memory_order_relaxed);
    dst_nic.rx_shard_.packets.fetch_add(1, std::memory_order_relaxed);
    dst_nic.rx_shard_.bytes.fetch_add(bytes, std::memory_order_relaxed);
    PLOG(trace, "fabric") << "xfer " << bytes << "B pid" << owner_->id()
                          << "->pid" << dst << " ch " << channel << " start "
                          << format_simtime(start) << " deliver "
                          << format_simtime(pkt.deliver_time);
    dst_port->rx_.push(std::move(pkt));
    return tx_done;
}

std::optional<Packet> Port::recv() {
    return audit_rx(owner_->id(), rx_.pop());
}

std::optional<Packet> Port::try_recv() {
    return audit_rx(owner_->id(), rx_.try_pop());
}

std::optional<Packet> Port::recv_on(ChannelId channel) {
    return audit_rx(owner_->id(),
                    rx_.pop_matching([channel](const Packet& p) {
                        return p.channel == channel;
                    }));
}

std::optional<Packet> Port::recv_from(ProcessId src, ChannelId channel) {
    return audit_rx(owner_->id(),
                    rx_.pop_matching([src, channel](const Packet& p) {
                        return p.channel == channel && p.src == src;
                    }));
}

std::optional<Packet> Port::try_recv_from(ProcessId src, ChannelId channel) {
    return audit_rx(owner_->id(),
                    rx_.try_pop_matching([src, channel](const Packet& p) {
                        return p.channel == channel && p.src == src;
                    }));
}

void PortRef::release() {
    if (adapter_ && port_) adapter_->release(port_);
    adapter_ = nullptr;
    port_ = nullptr;
}

// --------------------------------------------------------------------------
// Adapter

PortRef Adapter::open(Process& p, const std::string& owner_tag) {
    osal::CheckedLock lk(mu_);
    if (segment_->params().exclusive_open) {
        // Hardware with a single-owner driver (BIP on Myrinet, SCI maps):
        // exactly one port, one owner tag, one process.
        if (!ports_.empty()) {
            auto& [pid, existing] = *ports_.begin();
            if (pid != p.id() || existing->owner_tag_ != owner_tag)
                throw ResourceConflict(
                    "adapter " + machine_->name() + "/" + segment_->name() +
                    " already owned by '" + existing->owner_tag_ +
                    "' (pid " + std::to_string(pid) + "); '" + owner_tag +
                    "' cannot open it");
            ++existing->refcount_;
            return PortRef(this, existing.get());
        }
    }
    auto it = ports_.find(p.id());
    if (it == ports_.end()) {
        auto port = std::unique_ptr<Port>(new Port(*this, p));
        port->owner_tag_ = owner_tag;
        it = ports_.emplace(p.id(), std::move(port)).first;
        {
            osal::CheckedLock rk(segment_->route_mu_);
            segment_->routes_[p.id()] = it->second.get();
        }
        segment_->grid_->bump_route_generation(segment_->zone_id());
        segment_->publish_routes();
        segment_->route_cv_.notify_all();
        PLOG(debug, "fabric") << "open " << machine_->name() << "/"
                              << segment_->name() << " by " << owner_tag
                              << " pid " << p.id();
    }
    ++it->second->refcount_;
    return PortRef(this, it->second.get());
}

std::string Adapter::owner_tag() const {
    osal::CheckedLock lk(mu_);
    return ports_.empty() ? std::string() : ports_.begin()->second->owner_tag_;
}

bool Adapter::is_open() const {
    osal::CheckedLock lk(mu_);
    return !ports_.empty();
}

void Adapter::release(Port* port) {
    osal::CheckedLock lk(mu_);
    if (--port->refcount_ > 0) return;
    const ProcessId pid = port->owner_->id();
    {
        osal::CheckedLock rk(segment_->route_mu_);
        segment_->routes_.erase(pid);
    }
    segment_->grid_->bump_route_generation(segment_->zone_id());
    segment_->publish_routes();
    port->rx_.close();
    ports_.erase(pid);
}

AdapterCounters Adapter::counters() const {
    AdapterCounters c;
    c.tx_packets = tx_shard_.packets.load(std::memory_order_relaxed);
    c.tx_bytes = tx_shard_.bytes.load(std::memory_order_relaxed);
    c.rx_packets = rx_shard_.packets.load(std::memory_order_relaxed);
    c.rx_bytes = rx_shard_.bytes.load(std::memory_order_relaxed);
    {
        osal::CheckedLock lk(tx_shard_.mu);
        c.tx_span_high_water = tx_shard_.busy.high_water();
        c.tx_pruned_spans = tx_shard_.busy.pruned();
    }
    {
        osal::CheckedLock lk(rx_shard_.mu);
        c.rx_span_high_water = rx_shard_.busy.high_water();
        c.rx_pruned_spans = rx_shard_.busy.pruned();
    }
    return c;
}

// --------------------------------------------------------------------------
// NetworkSegment / Machine

Port* NetworkSegment::port_for(ProcessId pid) {
    osal::CheckedLock lk(route_mu_);
    auto it = routes_.find(pid);
    return it == routes_.end() ? nullptr : it->second;
}

NetworkSegment::RouteSnapshot NetworkSegment::route_snapshot() {
    // Generation first: if a route changes while we copy, the snapshot's
    // stamp is already stale and consumers revalidate — never the reverse.
    RouteSnapshot snap;
    snap.generation = grid_->route_generation();
    osal::CheckedLock lk(route_mu_);
    snap.routes.reserve(routes_.size());
    for (const auto& [pid, port] : routes_) snap.routes.emplace_back(pid, port);
    return snap;
}

Port* NetworkSegment::lookup_port(ProcessId pid) {
    if (util::caches_enabled()) {
        // Reader registration for table retirement: the slot increment is
        // seq_cst and so is the publisher's table-pointer store, so a
        // publisher that samples this slot at zero afterwards knows we
        // will observe its (or a later) table, never a superseded one.
        const std::size_t slot =
            reader_parity_.load(std::memory_order_relaxed) & 1;
        table_readers_[slot].fetch_add(1, std::memory_order_seq_cst);
        const RouteTable* t = route_table_.load(std::memory_order_seq_cst);
        Port* hit = nullptr;
        if (t != nullptr &&
            t->generation == grid_->zone_route_generation(zone_id_)) {
            auto it = std::lower_bound(
                t->entries.begin(), t->entries.end(), pid,
                [](const std::pair<ProcessId, Port*>& e, ProcessId p) {
                    return e.first < p;
                });
            if (it != t->entries.end() && it->first == pid) hit = it->second;
            // pid absent from a CURRENT table: the peer has not opened its
            // port yet — fall through to the blocking slow path.
        }
        table_readers_[slot].fetch_sub(1, std::memory_order_release);
        if (hit != nullptr) {
            route_fast_hits_.fetch_add(1, std::memory_order_relaxed);
            return hit;
        }
    }
    route_fast_misses_.fetch_add(1, std::memory_order_relaxed);
    Port* p = wait_port_for(pid);
    if (p != nullptr) {
        // A generation bump elsewhere in this ZONE leaves our (unchanged)
        // table stale-stamped; refresh it so subsequent sends go fast.
        // Churn in other zones no longer reaches this stamp at all.
        const RouteTable* t = route_table_.load(std::memory_order_acquire);
        if (t == nullptr ||
            t->generation != grid_->zone_route_generation(zone_id_))
            publish_routes();
    }
    return p;
}

void NetworkSegment::publish_routes() {
    auto t = std::make_unique<RouteTable>();
    // Zone generation first: if a route changes while we copy, the table's
    // stamp is already stale and readers fall back — never the reverse.
    t->generation = grid_->zone_route_generation(zone_id_);
    osal::CheckedLock lk(route_mu_);
    t->entries.reserve(routes_.size());
    for (const auto& [pid, port] : routes_) t->entries.emplace_back(pid, port);
    if (!route_tables_.empty()) {
        // Stamp the table being superseded with its quiescent horizon: the
        // max owner clock right now. A reader still holding it is a port
        // owner whose clock is frozen at or below this for the whole
        // lookup, so min_route_owner_clock passing the stamp rules out
        // in-flight readers of this table (modulo sibling-thread clock
        // advances — retire_tables_locked's reader counters cover those).
        RouteTable& prev = *route_tables_.back();
        prev.retire_horizon = 0;
        for (const auto& [pid, port] : routes_)
            prev.retire_horizon =
                std::max(prev.retire_horizon, port->owner().clock().now());
        prev.superseded = true;
    }
    route_table_.store(t.get(), std::memory_order_seq_cst);
    route_tables_.push_back(std::move(t));
    reader_parity_.fetch_add(1, std::memory_order_relaxed);
    retire_tables_locked();
}

void NetworkSegment::retire_tables_locked() {
    if (route_tables_.size() < 2) return;
    const bool no_owners = routes_.empty();
    SimTime min_clock = std::numeric_limits<SimTime>::max();
    for (const auto& [pid, port] : routes_)
        min_clock = std::min(min_clock, port->owner().clock().now());
    bool any = false;
    for (std::size_t i = 0; i + 1 < route_tables_.size(); ++i) {
        if (no_owners || route_tables_[i]->retire_horizon < min_clock) {
            any = true;
            break;
        }
    }
    if (!any) return;
    // Reader drain proof: superseded tables gain no new readers (the live
    // pointer was replaced with seq_cst before we got here), so observing
    // slot 0 at zero and then slot 1 at zero means nobody holds ANY
    // superseded table. The parity flip at publish biases current traffic
    // into one slot so the other drains under load.
    if (table_readers_[0].load(std::memory_order_seq_cst) != 0) return;
    if (table_readers_[1].load(std::memory_order_seq_cst) != 0) return;
    std::size_t kept = 0;
    std::uint64_t freed = 0;
    for (std::size_t i = 0; i + 1 < route_tables_.size(); ++i) {
        if (no_owners || route_tables_[i]->retire_horizon < min_clock) {
            route_tables_[i].reset();
            ++freed;
        } else {
            route_tables_[kept++] = std::move(route_tables_[i]);
        }
    }
    route_tables_[kept++] = std::move(route_tables_.back());
    route_tables_.resize(kept);
    route_tables_retired_.fetch_add(freed, std::memory_order_relaxed);
}

std::size_t NetworkSegment::route_tables_retained() {
    osal::CheckedLock lk(route_mu_);
    return route_tables_.size();
}

SimTime NetworkSegment::min_route_owner_clock() {
    osal::CheckedLock lk(route_mu_);
    if (routes_.empty()) return 0;
    SimTime h = std::numeric_limits<SimTime>::max();
    for (const auto& [pid, port] : routes_)
        h = std::min(h, port->owner().clock().now());
    return h;
}

Port* NetworkSegment::wait_port_for(ProcessId pid) {
    {
        osal::CheckedLock lk(route_mu_);
        auto it = routes_.find(pid);
        if (it != routes_.end()) return it->second;
    }
    // Not (yet) open: processes boot asynchronously, so first wait for the
    // peer process to exist at all, then check the static topology. A send
    // to a process id that is never created blocks — like a connect to a
    // host that never boots.
    Machine& peer = grid_->wait_process(pid).machine();
    if (peer.adapter_on(*this) == nullptr) return nullptr;
    osal::CheckedUniqueLock lk(route_mu_);
    route_cv_.wait(lk, [&] { return routes_.count(pid) != 0; });
    return routes_[pid];
}

Adapter* Machine::adapter_on(const NetworkSegment& seg) const {
    for (Adapter* a : adapters_)
        if (&a->segment() == &seg) return a;
    return nullptr;
}

// --------------------------------------------------------------------------
// Process

Grid& Process::grid() noexcept { return *grid_; }

std::string Process::name() const {
    return util::strfmt("pid%u@%s", id_, machine_->name().c_str());
}

Process& Process::current() {
    PADICO_CHECK(tls_current_process != nullptr,
                 "not running inside a grid process");
    return *tls_current_process;
}

Process* Process::current_or_null() noexcept { return tls_current_process; }

void Process::bind_to_thread(Process* p) noexcept {
    tls_current_process = p;
}

// --------------------------------------------------------------------------
// Grid

Grid::~Grid() {
    // Join remaining threads without throwing from the destructor.
    try {
        join_all();
    } catch (const std::exception& e) {
        PLOG(error, "fabric") << "process failed during ~Grid: " << e.what();
    }
}

Machine& Grid::add_machine(const std::string& name, int cpus) {
    PADICO_CHECK(cpus > 0, "machine needs at least one cpu");
    machines_.push_back(std::make_unique<Machine>(*this, name, cpus));
    return *machines_.back();
}

NetworkSegment& Grid::add_segment(const std::string& name, NetTech tech) {
    NetworkSegment& s = add_segment(name, default_params(tech));
    s.set_tech(tech);
    return s;
}

NetworkSegment& Grid::add_segment(const std::string& name, LinkParams params) {
    segments_.push_back(std::make_unique<NetworkSegment>(*this, name, params));
    return *segments_.back();
}

Adapter& Grid::attach(Machine& m, NetworkSegment& s) {
    PADICO_CHECK(m.adapter_on(s) == nullptr,
                 "machine " + m.name() + " already attached to " + s.name());
    adapters_.push_back(std::make_unique<Adapter>(m, s));
    // Grid-wide rank used to acquire per-NIC timing locks in one fixed
    // global order (see Port::send). Mirrored into the shard locks' check
    // ranks so PADICO_CHECK=ON enforces the same order it documents.
    Adapter& a = *adapters_.back();
    a.order_ = adapters_.size() - 1;
    a.tx_shard_.mu.set_rank(lockrank::shard_rank(a.order_, false),
                            "fabric.shard.tx");
    a.rx_shard_.mu.set_rank(lockrank::shard_rank(a.order_, true),
                            "fabric.shard.rx");
    s.attached_.fetch_add(1, std::memory_order_relaxed);
    m.adapters_.push_back(&a);
    return a;
}

Machine* Grid::find_machine(const std::string& name) noexcept {
    for (auto& m : machines_)
        if (m->name() == name) return m.get();
    return nullptr;
}

NetworkSegment* Grid::find_segment(const std::string& name) noexcept {
    for (auto& s : segments_)
        if (s->name() == name) return s.get();
    return nullptr;
}

ZoneId Grid::register_zone() {
    const ZoneId id = next_zone_.fetch_add(1, std::memory_order_relaxed);
    PADICO_CHECK(id < kMaxZones,
                 "too many routing zones (cap " + std::to_string(kMaxZones) +
                     ")");
    return id;
}

std::uint64_t Grid::machine_route_stamp(const Machine& m) const noexcept {
    std::uint64_t stamp = 0;
    for (const Adapter* a : m.adapters())
        stamp += zone_route_generation(a->segment_->zone_id());
    return stamp;
}

Machine& Grid::machine(const std::string& name) {
    for (auto& m : machines_)
        if (m->name() == name) return *m;
    throw LookupError("no machine named " + name);
}

NetworkSegment& Grid::segment(const std::string& name) {
    for (auto& s : segments_)
        if (s->name() == name) return *s;
    throw LookupError("no segment named " + name);
}

Process& Grid::spawn(Machine& m, std::function<void(Process&)> body) {
    osal::CheckedLock lk(proc_mu_);
    const ProcessId id = static_cast<ProcessId>(processes_.size());
    processes_.push_back(
        std::unique_ptr<Process>(new Process(*this, m, id)));
    Process* proc = processes_.back().get();
    proc->thread_ = osal::sched::spawn_thread([proc, body = std::move(body)] {
        tls_current_process = proc;
        try {
            body(*proc);
        } catch (const osal::sched::Aborted&) {
            // Scheduler-run abort (deadlock/step-limit exploration): the
            // controller unwound us deliberately; not a process failure.
        } catch (const std::exception& e) {
            // Surface immediately: peers of a dead process typically block,
            // so a silent failure would look like a hang at join_all().
            PLOG(error, "fabric")
                << proc->name() << " failed: " << e.what();
            proc->failure_ = std::current_exception();
        } catch (...) {
            PLOG(error, "fabric") << proc->name()
                                  << " failed with a non-standard exception";
            proc->failure_ = std::current_exception();
        }
        tls_current_process = nullptr;
    }, "fabric.process");
    proc_cv_.notify_all();
    return *proc;
}

void Grid::join_all() {
    // Snapshot under lock; more processes must not be spawned while joining.
    std::vector<Process*> procs;
    {
        osal::CheckedLock lk(proc_mu_);
        for (auto& p : processes_) procs.push_back(p.get());
    }
    for (Process* p : procs)
        if (p->thread_.joinable()) osal::sched::join(p->thread_);
    for (Process* p : procs) {
        if (p->failure_) {
            std::exception_ptr e = p->failure_;
            p->failure_ = nullptr;
            std::rethrow_exception(e);
        }
    }
}

Process& Grid::process(ProcessId id) {
    osal::CheckedLock lk(proc_mu_);
    PADICO_CHECK(id < processes_.size(), "bad process id");
    return *processes_[id];
}

Process& Grid::wait_process(ProcessId id) {
    osal::CheckedUniqueLock lk(proc_mu_);
    proc_cv_.wait(lk, [&] { return id < processes_.size(); });
    return *processes_[id];
}

ChannelId Grid::channel_id(const std::string& name) {
    osal::CheckedLock lk(name_mu_);
    auto it = channels_.find(name);
    if (it != channels_.end()) return it->second;
    const ChannelId id = next_channel_++;
    channels_.emplace(name, id);
    return id;
}

void Grid::register_service(const std::string& name, ProcessId pid) {
    {
        osal::CheckedLock lk(name_mu_);
        services_[name] = pid;
    }
    name_cv_.notify_all();
}

ProcessId Grid::wait_service(const std::string& name) {
    osal::CheckedUniqueLock lk(name_mu_);
    name_cv_.wait(lk, [&] { return services_.count(name) != 0; });
    return services_[name];
}

std::optional<ProcessId> Grid::try_lookup(const std::string& name) {
    osal::CheckedLock lk(name_mu_);
    auto it = services_.find(name);
    if (it == services_.end()) return std::nullopt;
    return it->second;
}

std::vector<NetworkSegment*> Grid::common_segments(const Machine& a,
                                                   const Machine& b) {
    std::vector<NetworkSegment*> out;
    for (auto& s : segments_) {
        if (a.adapter_on(*s) != nullptr && b.adapter_on(*s) != nullptr)
            out.push_back(s.get());
    }
    std::sort(out.begin(), out.end(),
              [](NetworkSegment* x, NetworkSegment* y) {
                  return attainable_mb(x->params()) > attainable_mb(y->params());
              });
    return out;
}

void run_spmd(Grid& grid, const std::vector<Machine*>& hosts,
              const std::function<void(Process&, int rank, int size)>& body) {
    const int size = static_cast<int>(hosts.size());
    for (int rank = 0; rank < size; ++rank) {
        grid.spawn(*hosts[rank],
                   [body, rank, size](Process& p) { body(p, rank, size); });
    }
}

} // namespace padico::fabric
