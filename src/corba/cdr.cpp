#include "corba/cdr.hpp"

namespace padico::corba::cdr {

// ---------------------------------------------------------------------------
// Encoder

void Encoder::align(std::size_t a) {
    const std::size_t rem = logical_ % a;
    if (rem != 0) {
        const std::size_t pad = a - rem;
        cur_.pad(pad);
        logical_ += pad;
    }
}

void Encoder::flush_cur() {
    if (cur_.empty()) return;
    out_.append(util::Segment(util::make_buf(std::move(cur_))));
    cur_ = util::ByteBuf();
}

void Encoder::put_raw(const void* p, std::size_t n, bool bulk) {
    if (n == 0) return;
    if (bulk && zero_copy_ && n >= kBulkThreshold) {
        // Pass the payload through as its own segment: the stream below
        // carries it by reference, no further copies down the stack.
        flush_cur();
        out_.append(util::Segment(util::make_buf(p, n)));
        logical_ += n;
        return;
    }
    cur_.append(p, n);
    logical_ += n;
}

void Encoder::put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size() + 1));
    cur_.append(s.data(), s.size());
    cur_.pad(1); // NUL
    logical_ += s.size() + 1;
}

void Encoder::put_message(const util::Message& m) {
    flush_cur();
    out_.append(m);
    logical_ += m.size();
}

util::Message Encoder::take() {
    flush_cur();
    util::Message m = std::move(out_);
    out_ = util::Message();
    logical_ = 0;
    return m;
}

// ---------------------------------------------------------------------------
// Decoder

void Decoder::align(std::size_t a) {
    const std::size_t rem = off_ % a;
    if (rem != 0) {
        const std::size_t pad = a - rem;
        PADICO_WIRE_CHECK(off_ + pad <= m_.size(), "padding past end");
        off_ += pad;
    }
}

void Decoder::read(void* p, std::size_t n) {
    PADICO_WIRE_CHECK(off_ + n <= m_.size(), "CDR buffer underrun");
    m_.copy_out(off_, p, n);
    off_ += n;
}

std::string Decoder::get_string() {
    const std::uint32_t len = get_u32();
    PADICO_WIRE_CHECK(len >= 1, "IDL string must include its NUL");
    std::string s(len - 1, '\0');
    read(s.data(), len - 1);
    std::uint8_t nul = 0;
    read(&nul, 1);
    PADICO_WIRE_CHECK(nul == 0, "IDL string not NUL-terminated");
    return s;
}

util::Message Decoder::get_bytes_msg(std::size_t n) {
    PADICO_WIRE_CHECK(off_ + n <= m_.size(), "CDR buffer underrun");
    util::Message view = m_.slice(off_, n);
    off_ += n;
    return view;
}

} // namespace padico::corba::cdr
