#include "corba/naming.hpp"

#include <thread>

namespace padico::corba {

void NamingServant::dispatch(const std::string& op, cdr::Decoder& in,
                             cdr::Encoder& out) {
    if (op == "bind") {
        const auto name = skel::arg<std::string>(in);
        const auto ior = skel::arg<IOR>(in);
        osal::CheckedLock lk(mu_);
        bindings_[name] = ior;
        skel::ret(out, true);
    } else if (op == "resolve") {
        const auto name = skel::arg<std::string>(in);
        osal::CheckedLock lk(mu_);
        auto it = bindings_.find(name);
        if (it == bindings_.end())
            throw RemoteError("NotFound: " + name);
        skel::ret(out, it->second);
    } else if (op == "try_resolve") {
        const auto name = skel::arg<std::string>(in);
        osal::CheckedLock lk(mu_);
        auto it = bindings_.find(name);
        skel::ret(out, it != bindings_.end());
        if (it != bindings_.end()) skel::ret(out, it->second);
    } else if (op == "unbind") {
        const auto name = skel::arg<std::string>(in);
        osal::CheckedLock lk(mu_);
        if (bindings_.erase(name) == 0)
            throw RemoteError("NotFound: " + name);
        skel::ret(out, true);
    } else if (op == "list") {
        osal::CheckedLock lk(mu_);
        std::vector<std::string> names;
        for (const auto& [n, ior] : bindings_) names.push_back(n);
        skel::ret(out, names);
    } else {
        throw RemoteError("BAD_OPERATION: " + op);
    }
}

IOR start_naming_service(Orb& orb) {
    const std::string endpoint = "naming-service";
    orb.serve(endpoint);
    IOR ior = orb.activate(std::make_shared<NamingServant>());
    orb.runtime().grid().register_service(
        "corba/naming/key", static_cast<fabric::ProcessId>(ior.key));
    orb.runtime().grid().register_service("corba/naming",
                                          orb.runtime().process().id());
    return ior;
}

NamingClient NamingClient::connect(Orb& orb) {
    auto& grid = orb.runtime().grid();
    (void)grid.wait_service("corba/naming"); // block until the service is up
    IOR ior;
    ior.endpoint = "naming-service";
    ior.key = grid.wait_service("corba/naming/key");
    ior.type = "IDL:omg.org/CosNaming/NamingContext:1.0";
    return NamingClient(orb, ior);
}

void NamingClient::bind(const std::string& name, const IOR& ior) {
    call<bool>(ref_, "bind", name, ior);
}

IOR NamingClient::resolve(const std::string& name) {
    return call<IOR>(ref_, "resolve", name);
}

IOR NamingClient::resolve_wait(const std::string& name) {
    while (true) {
        util::Message reply = ref_.invoke(
            "try_resolve", cdr::encode(true, name));
        cdr::Decoder d(std::move(reply));
        bool found = false;
        cdr_get(d, found);
        if (found) {
            IOR ior;
            cdr_get(d, ior);
            return ior;
        }
        // Poll politely; model a retry delay on the virtual clock.
        std::this_thread::yield();
    }
}

void NamingClient::unbind(const std::string& name) {
    call<bool>(ref_, "unbind", name);
}

std::vector<std::string> NamingClient::list() {
    return call<std::vector<std::string>>(ref_, "list");
}

} // namespace padico::corba
