#pragma once
/// \file cdr.hpp
/// CORBA Common Data Representation: aligned binary marshalling of IDL
/// types (octet, short/long/longlong + unsigned, float/double, boolean,
/// string, sequence<T>, and user structs via ADL cdr_put/cdr_get).
///
/// The encoder builds a scatter-gather util::Message. Large primitive
/// sequences can be emitted as *separate segments* instead of being copied
/// into the contiguous stream — this is the marshalling-strategy knob the
/// paper's Fig. 7 turns on: "unlike omniORB, Mico and ORBacus always copy
/// data for marshalling and unmarshalling". An omniORB-profile encoder
/// passes sequence payloads through by reference; a Mico-profile encoder
/// memcpy's them into the stream (a real copy, plus the modeled cost
/// charged by the ORB).

#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace padico::corba::cdr {

/// Sequences at least this large use the zero-copy path (when enabled).
inline constexpr std::size_t kBulkThreshold = 1024;

class Encoder {
public:
    /// \p zero_copy selects the sequence marshalling strategy (see above).
    explicit Encoder(bool zero_copy = true) : zero_copy_(zero_copy) {}

    // --- primitives (CDR alignment = size of the primitive) --------------
    void put_u8(std::uint8_t v) { put_prim(v); }
    void put_i8(std::int8_t v) { put_prim(v); }
    void put_bool(bool v) { put_u8(v ? 1 : 0); }
    void put_u16(std::uint16_t v) { put_prim(v); }
    void put_i16(std::int16_t v) { put_prim(v); }
    void put_u32(std::uint32_t v) { put_prim(v); }
    void put_i32(std::int32_t v) { put_prim(v); }
    void put_u64(std::uint64_t v) { put_prim(v); }
    void put_i64(std::int64_t v) { put_prim(v); }
    void put_f32(float v) { put_prim(v); }
    void put_f64(double v) { put_prim(v); }

    /// IDL string: u32 length incl. NUL, bytes, NUL.
    void put_string(std::string_view s);

    /// IDL sequence of a primitive type: u32 count then the elements.
    template <typename T> void put_seq(std::span<const T> data) {
        static_assert(std::is_arithmetic_v<T>);
        put_u32(static_cast<std::uint32_t>(data.size()));
        align(alignof(T));
        put_raw(data.data(), data.size_bytes(), /*bulk=*/true);
    }

    /// Zero-copy sequence from an already-shared buffer holding \p count
    /// elements of T (the GridCCM fragment path: message slices go out
    /// without any copy at all).
    template <typename T>
    void put_seq_shared(util::Segment seg, std::size_t count) {
        static_assert(std::is_arithmetic_v<T>);
        PADICO_CHECK(seg.size() == count * sizeof(T),
                     "segment size does not match element count");
        put_u32(static_cast<std::uint32_t>(count));
        align(alignof(T));
        if (zero_copy_) {
            flush_cur();
            out_.append(std::move(seg));
            logical_ += seg.size();
        } else {
            put_raw(seg.data(), seg.size(), /*bulk=*/false);
        }
    }

    /// Raw unaligned bytes (pre-encoded payloads).
    void put_bytes(const void* p, std::size_t n) { put_raw(p, n, true); }
    void put_message(const util::Message& m);

    /// Total logical bytes encoded so far.
    std::size_t size() const noexcept { return logical_; }

    bool zero_copy() const noexcept { return zero_copy_; }

    /// Finalize and take the wire message.
    util::Message take();

private:
    template <typename T> void put_prim(T v) {
        align(alignof(T));
        cur_.append(&v, sizeof v);
        logical_ += sizeof v;
    }
    void align(std::size_t a);
    void flush_cur();
    void put_raw(const void* p, std::size_t n, bool bulk);

    bool zero_copy_;
    util::ByteBuf cur_;
    util::Message out_;
    std::size_t logical_ = 0;
};

class Decoder {
public:
    explicit Decoder(util::Message m) : m_(std::move(m)) {}

    std::uint8_t get_u8() { return get_prim<std::uint8_t>(); }
    std::int8_t get_i8() { return get_prim<std::int8_t>(); }
    bool get_bool() { return get_u8() != 0; }
    std::uint16_t get_u16() { return get_prim<std::uint16_t>(); }
    std::int16_t get_i16() { return get_prim<std::int16_t>(); }
    std::uint32_t get_u32() { return get_prim<std::uint32_t>(); }
    std::int32_t get_i32() { return get_prim<std::int32_t>(); }
    std::uint64_t get_u64() { return get_prim<std::uint64_t>(); }
    std::int64_t get_i64() { return get_prim<std::int64_t>(); }
    float get_f32() { return get_prim<float>(); }
    double get_f64() { return get_prim<double>(); }

    std::string get_string();

    template <typename T> std::vector<T> get_seq() {
        static_assert(std::is_arithmetic_v<T>);
        const std::uint32_t count = get_u32();
        align(alignof(T));
        std::vector<T> out(count);
        read(out.data(), count * sizeof(T));
        return out;
    }

    /// Zero-copy sequence view: the payload as a message slice (no copy).
    template <typename T>
    util::Message get_seq_msg(std::size_t* count_out = nullptr) {
        static_assert(std::is_arithmetic_v<T>);
        const std::uint32_t count = get_u32();
        align(alignof(T));
        const std::size_t bytes = count * sizeof(T);
        PADICO_WIRE_CHECK(off_ + bytes <= m_.size(), "sequence truncated");
        util::Message view = m_.slice(off_, bytes);
        off_ += bytes;
        if (count_out != nullptr) *count_out = count;
        return view;
    }

    util::Message get_bytes_msg(std::size_t n);

    std::size_t remaining() const noexcept { return m_.size() - off_; }
    bool at_end() const noexcept { return remaining() == 0; }
    /// Throws ProtocolError if trailing bytes remain (strict skeletons).
    void expect_end() const {
        PADICO_WIRE_CHECK(at_end(), "trailing bytes after decoded value");
    }

private:
    template <typename T> T get_prim() {
        align(alignof(T));
        T v{};
        read(&v, sizeof v);
        return v;
    }
    void align(std::size_t a);
    void read(void* p, std::size_t n);

    util::Message m_;
    std::size_t off_ = 0;
};

// ---------------------------------------------------------------------------
// ADL-extensible typed marshalling: cdr_put(enc, v) / cdr_get(dec, v).

inline void cdr_put(Encoder& e, std::uint8_t v) { e.put_u8(v); }
inline void cdr_put(Encoder& e, std::int8_t v) { e.put_i8(v); }
inline void cdr_put(Encoder& e, bool v) { e.put_bool(v); }
inline void cdr_put(Encoder& e, std::uint16_t v) { e.put_u16(v); }
inline void cdr_put(Encoder& e, std::int16_t v) { e.put_i16(v); }
inline void cdr_put(Encoder& e, std::uint32_t v) { e.put_u32(v); }
inline void cdr_put(Encoder& e, std::int32_t v) { e.put_i32(v); }
inline void cdr_put(Encoder& e, std::uint64_t v) { e.put_u64(v); }
inline void cdr_put(Encoder& e, std::int64_t v) { e.put_i64(v); }
inline void cdr_put(Encoder& e, float v) { e.put_f32(v); }
inline void cdr_put(Encoder& e, double v) { e.put_f64(v); }
inline void cdr_put(Encoder& e, const std::string& v) { e.put_string(v); }
template <typename T> void cdr_put(Encoder& e, const std::vector<T>& v) {
    if constexpr (std::is_arithmetic_v<T>) {
        e.put_seq(std::span<const T>(v));
    } else {
        e.put_u32(static_cast<std::uint32_t>(v.size()));
        for (const auto& x : v) cdr_put(e, x);
    }
}

inline void cdr_get(Decoder& d, std::uint8_t& v) { v = d.get_u8(); }
inline void cdr_get(Decoder& d, std::int8_t& v) { v = d.get_i8(); }
inline void cdr_get(Decoder& d, bool& v) { v = d.get_bool(); }
inline void cdr_get(Decoder& d, std::uint16_t& v) { v = d.get_u16(); }
inline void cdr_get(Decoder& d, std::int16_t& v) { v = d.get_i16(); }
inline void cdr_get(Decoder& d, std::uint32_t& v) { v = d.get_u32(); }
inline void cdr_get(Decoder& d, std::int32_t& v) { v = d.get_i32(); }
inline void cdr_get(Decoder& d, std::uint64_t& v) { v = d.get_u64(); }
inline void cdr_get(Decoder& d, std::int64_t& v) { v = d.get_i64(); }
inline void cdr_get(Decoder& d, float& v) { v = d.get_f32(); }
inline void cdr_get(Decoder& d, double& v) { v = d.get_f64(); }
inline void cdr_get(Decoder& d, std::string& v) { v = d.get_string(); }
template <typename T> void cdr_get(Decoder& d, std::vector<T>& v) {
    if constexpr (std::is_arithmetic_v<T>) {
        v = d.get_seq<T>();
    } else {
        const std::uint32_t n = d.get_u32();
        v.resize(n);
        for (auto& x : v) cdr_get(d, x);
    }
}

/// Encode a value pack into a fresh message.
template <typename... Ts> util::Message encode(bool zero_copy, const Ts&... vs) {
    Encoder e(zero_copy);
    (cdr_put(e, vs), ...);
    return e.take();
}

/// Decode a single value of type T from a message.
template <typename T> T decode_one(util::Message m) {
    Decoder d(std::move(m));
    T v{};
    cdr_get(d, v);
    return v;
}

} // namespace padico::corba::cdr
