#pragma once
/// \file stub.hpp
/// Typed invocation helpers: the hand-written equivalent of IDL-compiler
/// stub/skeleton output. A stub call marshals its arguments with CDR,
/// performs the GIOP invocation and unmarshals the result; a skeleton
/// method unmarshals, invokes the servant method and marshals the reply.

#include <tuple>

#include "corba/orb.hpp"

namespace padico::corba {

/// Invoke \p op with typed arguments and a typed result.
template <typename R, typename... As>
R call(ObjectRef& obj, const std::string& op, const As&... args) {
    util::Message reply =
        obj.invoke(op, cdr::encode(/*zero_copy=*/true, args...));
    if constexpr (std::is_void_v<R>) {
        (void)reply;
        return;
    } else {
        return cdr::decode_one<R>(std::move(reply));
    }
}

/// Oneway (no reply) typed invocation.
template <typename... As>
void call_oneway(ObjectRef& obj, const std::string& op, const As&... args) {
    obj.oneway(op, cdr::encode(/*zero_copy=*/true, args...));
}

namespace skel {

/// Decode one value of type T from the request stream.
template <typename T> T arg(cdr::Decoder& in) {
    T v{};
    cdr_get(in, v);
    return v;
}

/// Encode the operation result.
template <typename T> void ret(cdr::Encoder& out, const T& v) {
    cdr_put(out, v);
}

} // namespace skel

} // namespace padico::corba
