#include "corba/orb.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace padico::corba {

// ---------------------------------------------------------------------------
// Profiles. Calibration (DESIGN.md §7): with Myrinet-2000's 7 us hardware
// latency and PadicoTM's ~2.7 us of Madeleine+demux software, a request
// latency L implies per_msg = (L - 9.7us)/2 per side; a peak bandwidth B
// implies per_byte = (1/B - 1/240) us/B split across the two sides.

OrbProfile profile_omniorb3() {
    return {"omniORB-3.0.2", usec(5.2), 0.0, true};
}
OrbProfile profile_omniorb4() {
    // Slightly leaner than omniORB 3 in the paper's curve.
    return {"omniORB-4.0.0", usec(5.0), 0.0, true};
}
OrbProfile profile_mico() {
    // 62 us latency, 55 MB/s peak: always copies on (un)marshalling.
    return {"Mico-2.3.7", usec(26.2), 7.0, false};
}
OrbProfile profile_orbacus() {
    // 54 us latency, 63 MB/s peak.
    return {"ORBacus-4.0.5", usec(22.2), 5.85, false};
}
OrbProfile profile_openccm_java() {
    // Java stack of OpenCCM: paper's Fast-Ethernet GridCCM numbers imply
    // ~0.85x of MicoCCM throughput at same message sizes.
    return {"OpenCCM-Java", usec(40.0), 15.8, false};
}

OrbProfile profile_omniorb4_esiop() {
    // The §4.4 suggestion: a specific protocol (ESIOP) instead of general
    // GIOP. Leaner request processing plus compact framing; still
    // zero-copy marshalling.
    OrbProfile p = profile_omniorb4();
    p.name = "omniORB-4-ESIOP";
    p.per_msg = usec(2.6); // ~15 us one-way latency on Myrinet
    p.esiop = true;
    return p;
}

std::vector<OrbProfile> all_profiles() {
    return {profile_omniorb3(), profile_omniorb4(), profile_mico(),
            profile_orbacus()};
}

// ---------------------------------------------------------------------------
// IOR

std::string IOR::to_string() const {
    // '|' separators: endpoints and repository ids routinely contain '/'.
    return "IOR:" + endpoint + "|" + std::to_string(key) + "|" + type;
}

IOR IOR::from_string(const std::string& s) {
    PADICO_WIRE_CHECK(util::starts_with(s, "IOR:"), "not an IOR string");
    const auto parts = util::split(s.substr(4), '|');
    PADICO_WIRE_CHECK(parts.size() == 3, "malformed IOR");
    IOR ior;
    ior.endpoint = parts[0];
    ior.key = util::parse_uint(parts[1]);
    ior.type = parts[2];
    return ior;
}

// ---------------------------------------------------------------------------
// GIOP framing

namespace giop {

void send_message(ptm::VLink& link, MsgType type, util::Message body,
                  bool esiop) {
    util::Message wire;
    if (esiop) {
        EsiopHeader h;
        h.magic_type =
            kEsiopMagic ^ (static_cast<std::uint32_t>(type) << 24);
        PADICO_CHECK(body.size() <= 0xffffffffu,
                     "ESIOP messages are bounded to 4 GiB");
        h.body_len = static_cast<std::uint32_t>(body.size());
        wire = util::to_message(util::ByteBuf(&h, sizeof h));
    } else {
        Header h;
        h.msg_type = static_cast<std::uint8_t>(type);
        h.body_len = body.size();
        wire = util::to_message(util::ByteBuf(&h, sizeof h));
    }
    wire.append(body);
    link.write(std::move(wire));
}

std::optional<std::pair<MsgType, util::Message>> recv_message(
    ptm::VLink& link) {
    // Both framings start with a 4-byte magic; read the short prefix and
    // dispatch (a server can therefore serve GIOP and ESIOP clients).
    auto prefix = link.read_msg_opt(sizeof(EsiopHeader));
    if (!prefix.has_value()) return std::nullopt;
    std::uint32_t magic_type = 0;
    prefix->copy_out(0, &magic_type, sizeof magic_type);
    if ((magic_type & 0x00ffffffu) == (kEsiopMagic & 0x00ffffffu) &&
        magic_type != kMagic) {
        EsiopHeader h;
        prefix->copy_out(0, &h, sizeof h);
        const auto type =
            static_cast<MsgType>((h.magic_type ^ kEsiopMagic) >> 24);
        util::Message body = link.read_msg(h.body_len);
        return std::make_pair(type, std::move(body));
    }
    PADICO_WIRE_CHECK(magic_type == kMagic, "bad inter-ORB magic");
    util::Message rest =
        link.read_msg(sizeof(Header) - sizeof(EsiopHeader));
    util::ByteBuf hb = prefix->gather();
    hb.append(rest.gather().view());
    Header h;
    PADICO_CHECK(hb.size() == sizeof h, "short inter-ORB header");
    std::memcpy(&h, hb.data(), sizeof h);
    PADICO_WIRE_CHECK(h.version == 1, "unsupported GIOP version");
    util::Message body = link.read_msg(h.body_len);
    return std::make_pair(static_cast<MsgType>(h.msg_type), std::move(body));
}

FrameReader::Status FrameReader::poll(ptm::VLink& link, MsgType& type,
                                      util::Message& body) {
    for (;;) {
        switch (state_) {
        case State::kPrefix: {
            auto prefix = link.try_read_msg(sizeof(EsiopHeader));
            if (!prefix.has_value()) {
                if (!link.at_eof()) return Status::kNeedMore;
                // EOF is clean only on a frame boundary.
                PADICO_WIRE_CHECK(link.buffered_bytes() == 0,
                                  "stream ended inside inter-ORB prefix");
                return Status::kClosed;
            }
            std::uint32_t magic_type = 0;
            prefix->copy_out(0, &magic_type, sizeof magic_type);
            if ((magic_type & 0x00ffffffu) ==
                    (kEsiopMagic & 0x00ffffffu) &&
                magic_type != kMagic) {
                EsiopHeader h;
                prefix->copy_out(0, &h, sizeof h);
                type_ = static_cast<MsgType>((h.magic_type ^ kEsiopMagic) >>
                                             24);
                body_len_ = h.body_len;
                state_ = State::kBody;
                break;
            }
            PADICO_WIRE_CHECK(magic_type == kMagic, "bad inter-ORB magic");
            prefix_ = std::move(*prefix);
            state_ = State::kGiopRest;
            break;
        }
        case State::kGiopRest: {
            auto rest =
                link.try_read_msg(sizeof(Header) - sizeof(EsiopHeader));
            if (!rest.has_value()) {
                PADICO_WIRE_CHECK(!link.at_eof(),
                                  "stream ended inside inter-ORB header");
                return Status::kNeedMore;
            }
            util::ByteBuf hb = prefix_.gather();
            hb.append(rest->gather().view());
            Header h;
            PADICO_CHECK(hb.size() == sizeof h, "short inter-ORB header");
            std::memcpy(&h, hb.data(), sizeof h);
            PADICO_WIRE_CHECK(h.version == 1, "unsupported GIOP version");
            type_ = static_cast<MsgType>(h.msg_type);
            body_len_ = h.body_len;
            prefix_ = util::Message();
            state_ = State::kBody;
            break;
        }
        case State::kBody: {
            auto b = link.try_read_msg(body_len_);
            if (!b.has_value()) {
                PADICO_WIRE_CHECK(!link.at_eof(),
                                  "stream ended inside inter-ORB body");
                return Status::kNeedMore;
            }
            type = type_;
            body = std::move(*b);
            state_ = State::kPrefix;
            return Status::kFrame;
        }
        }
    }
}

} // namespace giop

// ---------------------------------------------------------------------------
// ObjectRef

void ObjectRef::ensure_connected() {
    if (!conn_) {
        conn_ = std::make_shared<ptm::VLink>(
            ptm::VLink::connect(orb_->runtime(), ior_.endpoint));
    }
}

util::Message ObjectRef::invoke(const std::string& op, util::Message args) {
    PADICO_CHECK(valid(), "invoke on a nil reference");
    osal::CheckedLock lk(*conn_mu_);
    ensure_connected();

    cdr::Encoder req(orb_->profile().zero_copy);
    req.put_u64(next_request_++);
    req.put_u64(ior_.key);
    req.put_bool(true); // response expected
    req.put_string(op);
    req.put_message(args);

    orb_->charge(args.size());
    giop::send_message(*conn_, giop::MsgType::Request, req.take(),
                       orb_->profile().esiop);

    auto reply = giop::recv_message(*conn_);
    PADICO_CHECK(reply.has_value(), "connection closed during invocation");
    PADICO_WIRE_CHECK(reply->first == giop::MsgType::Reply,
                      "expected GIOP Reply");
    cdr::Decoder dec(std::move(reply->second));
    (void)dec.get_u64(); // request id
    const auto status = static_cast<giop::ReplyStatus>(dec.get_u8());
    util::Message payload = dec.get_bytes_msg(dec.remaining());
    orb_->charge(payload.size());
    if (status == giop::ReplyStatus::NoException) return payload;
    const std::string what = cdr::decode_one<std::string>(std::move(payload));
    throw RemoteError(ior_.type + "::" + op + ": " + what);
}

void ObjectRef::oneway(const std::string& op, util::Message args) {
    PADICO_CHECK(valid(), "oneway on a nil reference");
    osal::CheckedLock lk(*conn_mu_);
    ensure_connected();
    cdr::Encoder req(orb_->profile().zero_copy);
    req.put_u64(next_request_++);
    req.put_u64(ior_.key);
    req.put_bool(false); // no response
    req.put_string(op);
    req.put_message(args);
    orb_->charge(args.size());
    giop::send_message(*conn_, giop::MsgType::Request, req.take(),
                       orb_->profile().esiop);
}

// ---------------------------------------------------------------------------
// Orb

Orb::Orb(ptm::Runtime& rt, OrbProfile profile)
    : rt_(&rt), profile_(std::move(profile)) {}

Orb::~Orb() { shutdown(); }

void Orb::charge(std::size_t payload_bytes) {
    rt_->process().clock().advance(
        profile_.per_msg +
        static_cast<SimTime>(static_cast<double>(payload_bytes) *
                             profile_.per_byte_ns));
}

IOR Orb::activate(std::shared_ptr<Servant> servant) {
    PADICO_CHECK(servant != nullptr, "cannot activate a null servant");
    const std::uint64_t key = next_key_.fetch_add(1);
    IOR ior;
    ior.key = key;
    ior.type = servant->interface();
    {
        osal::CheckedLock lk(mu_);
        objects_[key] = std::move(servant);
        ior.endpoint = endpoint_;
    }
    return ior;
}

ObjectRef Orb::resolve(const IOR& ior) {
    PADICO_CHECK(ior.valid(), "cannot resolve a nil IOR");
    return ObjectRef(*this, ior);
}

void Orb::deactivate(const IOR& ior) {
    osal::CheckedLock lk(mu_);
    if (objects_.erase(ior.key) == 0)
        throw LookupError("no active object with key " +
                          std::to_string(ior.key));
}

std::shared_ptr<Servant> Orb::find_servant(std::uint64_t key) {
    osal::CheckedLock lk(mu_);
    auto it = objects_.find(key);
    return it == objects_.end() ? nullptr : it->second;
}

/// Per-connection server driver: GIOP/ESIOP frame reassembly on the
/// dispatcher side, request dispatch on the worker side.
class Orb::ServerProtocol : public svc::Protocol {
public:
    explicit ServerProtocol(Orb& orb) : orb_(&orb) {}

    Extract try_extract(ptm::VLink& link, util::Message& frame) override {
        giop::MsgType type;
        switch (reader_.poll(link, type, frame)) {
        case giop::FrameReader::Status::kNeedMore:
            return Extract::kNeedMore;
        case giop::FrameReader::Status::kClosed:
            return Extract::kClosed;
        case giop::FrameReader::Status::kFrame:
            break;
        }
        PADICO_WIRE_CHECK(type == giop::MsgType::Request,
                          "server expects GIOP Requests");
        return Extract::kFrame;
    }

    void on_frame(ptm::VLink& link, util::Message frame) override {
        orb_->handle_request(link, std::move(frame));
    }

private:
    Orb* orb_;
    giop::FrameReader reader_;
};

void Orb::serve(const std::string& endpoint, svc::ServerCore::Options opts) {
    PADICO_CHECK(core_ == nullptr, "orb already serving");
    {
        osal::CheckedLock lk(mu_);
        endpoint_ = endpoint;
    }
    if (opts.protocol == "svc") opts.protocol = "corba";
    core_ = std::make_unique<svc::ServerCore>(
        *rt_, endpoint,
        [this]() -> std::unique_ptr<svc::Protocol> {
            return std::make_unique<ServerProtocol>(*this);
        },
        opts);
}

void Orb::shutdown() {
    if (core_) core_->shutdown();
}

svc::ServerCore::Stats Orb::server_stats() const {
    return core_ ? core_->stats() : svc::ServerCore::Stats{};
}

void Orb::handle_request(ptm::VLink& conn, util::Message request_body) {
    cdr::Decoder dec(std::move(request_body));
    const std::uint64_t request_id = dec.get_u64();
    const std::uint64_t key = dec.get_u64();
    const bool want_reply = dec.get_bool();
    const std::string op = dec.get_string();
    util::Message args = dec.get_bytes_msg(dec.remaining());
    charge(args.size());

    giop::ReplyStatus status = giop::ReplyStatus::NoException;
    cdr::Encoder result(profile_.zero_copy);
    auto servant = find_servant(key);
    if (servant == nullptr) {
        status = giop::ReplyStatus::SystemException;
        cdr_put(result, std::string("OBJECT_NOT_EXIST: key " +
                                    std::to_string(key)));
    } else {
        try {
            cdr::Decoder argdec(std::move(args));
            servant->dispatch(op, argdec, result);
        } catch (const RemoteError& e) {
            PLOG(debug, "corba") << op << " raised: " << e.what();
            result = cdr::Encoder(profile_.zero_copy);
            status = giop::ReplyStatus::UserException;
            cdr_put(result, std::string(e.what()));
        } catch (const Error& e) {
            PLOG(warn, "corba")
                << op << " failed with system exception: " << e.what();
            result = cdr::Encoder(profile_.zero_copy);
            status = giop::ReplyStatus::SystemException;
            cdr_put(result, std::string(e.what()));
        }
    }
    if (!want_reply) return;

    cdr::Encoder rep(profile_.zero_copy);
    rep.put_u64(request_id);
    rep.put_u8(static_cast<std::uint8_t>(status));
    util::Message payload = result.take();
    charge(payload.size());
    rep.put_message(payload);
    giop::send_message(conn, giop::MsgType::Reply, rep.take(),
                       profile_.esiop);
}

} // namespace padico::corba
