#pragma once
/// \file naming.hpp
/// CORBA Naming Service subset: bind/resolve/unbind/list of string names to
/// object references. Itself a CORBA object ("dogfood"), so that component
/// deployment can publish and discover references across the grid exactly
/// as CCM prescribes.

#include <map>

#include "corba/stub.hpp"
#include "osal/checked.hpp"
#include "osal/lockrank.hpp"

namespace padico::corba {

/// Server side: host a naming context in this ORB.
class NamingServant : public Servant {
public:
    std::string interface() const override {
        return "IDL:omg.org/CosNaming/NamingContext:1.0";
    }
    void dispatch(const std::string& op, cdr::Decoder& in,
                  cdr::Encoder& out) override;

private:
    osal::CheckedMutex mu_{lockrank::kNaming, "corba.naming"};
    std::map<std::string, IOR> bindings_;
};

/// Start a naming service in \p orb and publish its endpoint grid-wide
/// under the well-known name "naming". Returns the service IOR.
IOR start_naming_service(Orb& orb);

/// Client-side proxy.
class NamingClient {
public:
    /// Resolve the well-known grid naming service.
    static NamingClient connect(Orb& orb);

    NamingClient(Orb& orb, const IOR& ior) : ref_(orb.resolve(ior)) {}

    /// Bind (or rebind) a name.
    void bind(const std::string& name, const IOR& ior);
    /// Resolve; throws RemoteError when unbound.
    IOR resolve(const std::string& name);
    /// Blocks (polling the service) until the name is bound.
    IOR resolve_wait(const std::string& name);
    void unbind(const std::string& name);
    std::vector<std::string> list();

private:
    ObjectRef ref_;
};

} // namespace padico::corba
