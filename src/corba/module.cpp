#include "corba/orb.hpp"

namespace padico::corba {

/// Register each CORBA implementation as a loadable PadicoTM module, under
/// "corba/<implementation>" — the paper's §4.3.4 list: "various CORBA
/// implementations have been seamlessly used on top of PadicoTM: omniORB 3,
/// omniORB 4, ORBacus 4.0, and Mico 2.3".
void install() {
    auto reg = [](const OrbProfile& p) {
        const std::string type = "corba/" + p.name;
        if (!ptm::ModuleManager::has_type(type))
            ptm::ModuleManager::register_type(
                type, [p](ptm::Runtime& rt) -> std::shared_ptr<ptm::Module> {
                    return std::make_shared<Orb>(rt, p);
                });
    };
    for (const auto& p : all_profiles()) reg(p);
    reg(profile_openccm_java());
    reg(profile_omniorb4_esiop());
}

} // namespace padico::corba
