#pragma once
/// \file orb.hpp
/// A CORBA-like object request broker on top of PadicoTM's VLink:
/// GIOP-style framed requests/replies, IORs, an object adapter (POA-lite)
/// dispatching to servants, and synchronous/oneway invocations.
///
/// One ORB engine serves as several "implementations" through pluggable
/// OrbProfile cost models reproducing the stacks the paper measured
/// (omniORB 3/4, Mico 2.3.7, ORBacus 4.0.5, and the Java OpenCCM stack):
/// zero-copy vs copying marshalling strategies plus per-request overheads.
/// The profile changes both the *real* data path (scatter-gather vs
/// memcpy'd CDR streams) and the modeled cost.

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "corba/cdr.hpp"
#include "osal/checked.hpp"
#include "osal/lockrank.hpp"
#include "padicotm/module.hpp"
#include "padicotm/runtime.hpp"
#include "padicotm/vlink.hpp"
#include "svc/server_core.hpp"

namespace padico::corba {

/// Cost/strategy model of one CORBA implementation (see DESIGN.md §7 for
/// the calibration against the paper's Fig. 7 numbers).
struct OrbProfile {
    std::string name;
    /// Per-message software overhead on each side (request or reply).
    SimTime per_msg = 0;
    /// Marshalling cost per payload byte on each side (the copies).
    double per_byte_ns = 0.0;
    /// Sequence marshalling strategy: pass-through vs copy.
    bool zero_copy = true;
    /// Use the Environment-Specific Inter-ORB Protocol instead of general
    /// GIOP: compact framing and a leaner request path. The paper (§4.4)
    /// suggests exactly this to lower the omniORB latency below 20 us.
    bool esiop = false;
};

/// The implementations evaluated in the paper (§4.4).
OrbProfile profile_omniorb3();
OrbProfile profile_omniorb4();
OrbProfile profile_mico();
OrbProfile profile_orbacus();
OrbProfile profile_openccm_java();
/// omniORB 4 over ESIOP (the §4.4 "specific protocol" suggestion).
OrbProfile profile_omniorb4_esiop();
/// All of the above, in Fig. 7 order.
std::vector<OrbProfile> all_profiles();

/// Interoperable object reference.
struct IOR {
    std::string endpoint; ///< server's VLink service name
    std::uint64_t key = 0;
    std::string type;     ///< interface repository id, e.g. "IDL:Echo:1.0"

    bool valid() const noexcept { return !endpoint.empty(); }
    /// "IOR:endpoint/key/type" — stringified reference, as CORBA does.
    std::string to_string() const;
    static IOR from_string(const std::string& s);
};

inline void cdr_put(cdr::Encoder& e, const IOR& v) {
    e.put_string(v.endpoint);
    e.put_u64(v.key);
    e.put_string(v.type);
}
inline void cdr_get(cdr::Decoder& d, IOR& v) {
    v.endpoint = d.get_string();
    v.key = d.get_u64();
    v.type = d.get_string();
}

/// Server-side implementation object. Skeletons (hand-written here, the
/// moral equivalent of IDL-compiler output) decode args, call the user
/// method and encode the result.
class Servant {
public:
    virtual ~Servant() = default;
    /// Interface repository id.
    virtual std::string interface() const = 0;
    /// Dispatch one operation; throw RemoteError for user exceptions.
    virtual void dispatch(const std::string& op, cdr::Decoder& in,
                          cdr::Encoder& out) = 0;
};

class Orb;

/// Client-side reference to a remote object; holds one GIOP connection
/// per reference (GIOP 1.0 style: one outstanding request at a time).
class ObjectRef {
public:
    ObjectRef() = default;

    bool valid() const noexcept { return orb_ != nullptr; }
    const IOR& ior() const noexcept { return ior_; }

    /// Synchronous invocation: sends args, waits for the reply payload.
    util::Message invoke(const std::string& op, util::Message args);

    /// Oneway invocation: no reply.
    void oneway(const std::string& op, util::Message args);

private:
    friend class Orb;
    ObjectRef(Orb& orb, IOR ior) : orb_(&orb), ior_(std::move(ior)) {}

    void ensure_connected();

    Orb* orb_ = nullptr;
    IOR ior_;
    std::shared_ptr<ptm::VLink> conn_;
    std::shared_ptr<osal::CheckedMutex> conn_mu_ =
        std::make_shared<osal::CheckedMutex>(lockrank::kOrbConn,
                                             "corba.conn");
    std::uint64_t next_request_ = 1;
};

/// The broker: object adapter + server loop + client connection factory.
/// Also a loadable PadicoTM module.
class Orb : public ptm::Module {
public:
    Orb(ptm::Runtime& rt, OrbProfile profile);
    ~Orb() override;
    Orb(const Orb&) = delete;
    Orb& operator=(const Orb&) = delete;

    std::string name() const override { return "corba/" + profile_.name; }
    ptm::Runtime& runtime() noexcept { return *rt_; }
    const OrbProfile& profile() const noexcept { return profile_; }

    // --- server side -----------------------------------------------------
    /// Register a servant; the IOR becomes valid once serve() has been
    /// called (the endpoint name is needed to mint complete IORs).
    IOR activate(std::shared_ptr<Servant> servant);
    void deactivate(const IOR& ior);

    /// Publish the endpoint and start accepting GIOP connections on the
    /// shared event-driven server core (thread count O(pool), regardless
    /// of how many clients connect). Pass Options to size the pool or to
    /// fall back to the thread-per-connection shape.
    void serve(const std::string& endpoint,
               svc::ServerCore::Options opts = {});

    /// Stop the server core: no more accepts, live connections aborted,
    /// every server thread joined.
    void shutdown();

    /// Server-core counters (accepted/pruned connections, dispatched
    /// frames, live/peak thread counts). Zeroes before serve().
    svc::ServerCore::Stats server_stats() const;

    // --- client side -----------------------------------------------------
    ObjectRef resolve(const IOR& ior);

    /// Charge the modeled marshalling/processing cost of one GIOP message
    /// of \p payload_bytes (used on both client and server paths).
    void charge(std::size_t payload_bytes);

private:
    friend class ObjectRef;
    class ServerProtocol; ///< GIOP framing + dispatch driver (orb.cpp)

    /// Process one complete GIOP Request body: decode, dispatch to the
    /// servant, write the Reply (runs on a ServerCore worker).
    void handle_request(ptm::VLink& conn, util::Message request_body);
    std::shared_ptr<Servant> find_servant(std::uint64_t key);

    ptm::Runtime* rt_;
    OrbProfile profile_;
    std::string endpoint_;

    osal::CheckedMutex mu_{lockrank::kOrb, "corba.orb"};
    std::map<std::uint64_t, std::shared_ptr<Servant>> objects_;
    std::atomic<std::uint64_t> next_key_{1};

    std::unique_ptr<svc::ServerCore> core_;
};

/// Register every CORBA implementation profile as a loadable PadicoTM
/// module type ("corba/<name>").
void install();

// ---------------------------------------------------------------------------
// GIOP wire format (shared with tests)

namespace giop {

inline constexpr std::uint32_t kMagic = 0x504f4947;      // "GIOP"
inline constexpr std::uint32_t kEsiopMagic = 0x4f495345; // "ESIO"

enum class MsgType : std::uint8_t { Request = 0, Reply = 1 };

enum class ReplyStatus : std::uint8_t {
    NoException = 0,
    UserException = 1,
    SystemException = 2,
};

/// General GIOP framing: 16 bytes.
struct Header {
    std::uint32_t magic = kMagic;
    std::uint8_t version = 1;
    std::uint8_t msg_type = 0;
    std::uint16_t reserved = 0;
    std::uint64_t body_len = 0;
};
static_assert(sizeof(Header) == 16);

/// ESIOP framing: 8 bytes — magic+type packed, 32-bit body length (the
/// environment-specific protocol may assume same-endianness peers and
/// bounded messages).
struct EsiopHeader {
    std::uint32_t magic_type = 0; ///< kEsiopMagic ^ (type << 24)
    std::uint32_t body_len = 0;
};
static_assert(sizeof(EsiopHeader) == 8);

/// Write one inter-ORB message to a VLink (GIOP or ESIOP framing).
void send_message(ptm::VLink& link, MsgType type, util::Message body,
                  bool esiop = false);

/// Read one inter-ORB message (auto-detects GIOP vs ESIOP framing);
/// nullopt on clean EOF.
std::optional<std::pair<MsgType, util::Message>> recv_message(
    ptm::VLink& link);

/// Incremental, non-blocking counterpart of recv_message for readiness
/// dispatchers: each poll() consumes whatever bytes are buffered on the
/// link and keeps the framing state (prefix parsed, body length known)
/// across calls until one whole message has been reassembled. Throws
/// ProtocolError when the stream ends mid-frame or the framing is invalid.
class FrameReader {
public:
    enum class Status { kFrame, kNeedMore, kClosed };

    Status poll(ptm::VLink& link, MsgType& type, util::Message& body);

private:
    enum class State { kPrefix, kGiopRest, kBody };
    State state_ = State::kPrefix;
    MsgType type_ = MsgType::Request;
    std::uint64_t body_len_ = 0;
    util::Message prefix_; ///< first half of a general GIOP header
};

} // namespace giop

} // namespace padico::corba
