#include "sockets/sockets.hpp"

#include <cstring>

#include "util/strings.hpp"

namespace padico::sock {

namespace {

/// SYN payload: the two channel ids of the new connection.
struct SynBody {
    fabric::ChannelId c2s;
    fabric::ChannelId s2c;
};

util::Message encode_syn(const SynBody& b) {
    util::ByteBuf buf;
    buf.append(&b, sizeof b);
    return util::to_message(std::move(buf));
}

SynBody decode_syn(const util::Message& m) {
    PADICO_WIRE_CHECK(m.size() == sizeof(SynBody), "bad SYN");
    SynBody b;
    m.copy_out(0, &b, sizeof b);
    return b;
}

} // namespace

SocketStack::SocketStack(fabric::Process& proc,
                         fabric::NetworkSegment& segment,
                         const std::string& owner_tag, const TcpCosts& costs)
    : proc_(&proc), segment_(&segment), costs_(costs) {
    PADICO_CHECK(segment.params().paradigm == fabric::Paradigm::Distributed ||
                     !segment.params().exclusive_open,
                 "socket stack needs a shareable (distributed) network; use "
                 "madeleine or PadicoTM for " +
                     segment.name());
    fabric::Adapter* nic = proc.machine().adapter_on(segment);
    if (nic == nullptr)
        throw LookupError("machine " + proc.machine().name() +
                          " has no adapter on " + segment.name());
    port_ = nic->open(proc, owner_tag);
}

Listener SocketStack::listen(const std::string& service) {
    auto& grid = proc_->grid();
    const fabric::ChannelId ch = grid.channel_id("sock/listen/" + service);
    grid.register_service("sock/" + service, proc_->id());
    return Listener(*this, service, ch);
}

Stream SocketStack::connect(const std::string& service) {
    auto& grid = proc_->grid();
    const fabric::ProcessId dst = grid.wait_service("sock/" + service);
    const fabric::ChannelId listen_ch =
        grid.channel_id("sock/listen/" + service);
    const std::uint64_t conn = next_conn_.fetch_add(1);
    SynBody body;
    body.c2s = grid.channel_id(
        util::strfmt("sock/conn/%u/%llu/c2s", proc_->id(),
                     static_cast<unsigned long long>(conn)));
    body.s2c = grid.channel_id(
        util::strfmt("sock/conn/%u/%llu/s2c", proc_->id(),
                     static_cast<unsigned long long>(conn)));

    auto& clk = proc_->clock();
    clk.advance(costs_.per_msg_send);
    clk.set(port_->send(dst, listen_ch, encode_syn(body), clk.now()));

    // Wait for the zero-length ACK on the server-to-client channel.
    auto ack = port_->recv_from(dst, body.s2c);
    PADICO_CHECK(ack.has_value(), "socket closed during connect");
    PADICO_WIRE_CHECK(ack->payload.empty(), "expected empty ACK");
    clk.merge(ack->deliver_time);
    clk.advance(costs_.per_msg_recv);
    return Stream(*this, dst, body.c2s, body.s2c);
}

Stream Listener::accept() {
    auto& proc = stack_->process();
    auto pkt = stack_->port_->recv_on(listen_ch_);
    PADICO_CHECK(pkt.has_value(), "socket closed during accept");
    proc.clock().merge(pkt->deliver_time);
    proc.clock().advance(stack_->costs().per_msg_recv);
    const SynBody body = decode_syn(pkt->payload);

    // ACK: zero-length message on the server-to-client channel.
    proc.clock().advance(stack_->costs().per_msg_send);
    proc.clock().set(stack_->port_->send(pkt->src, body.s2c, util::Message(),
                                         proc.clock().now()));
    return Stream(*stack_, pkt->src, body.s2c, body.c2s);
}

void Stream::write(util::Message msg) {
    PADICO_CHECK(valid(), "write on invalid stream");
    auto& proc = stack_->process();
    auto& clk = proc.clock();
    const std::size_t chunk = stack_->costs().chunk_size;
    std::size_t off = 0;
    const std::size_t total = msg.size();
    if (total == 0) return;
    while (off < total) {
        const std::size_t n = std::min(chunk, total - off);
        clk.advance(stack_->costs().per_msg_send);
        clk.set(stack_->port_->send(peer_, tx_, msg.slice(off, n), clk.now()));
        off += n;
    }
}

void Stream::write(const void* data, std::size_t n) {
    write(util::to_message(util::ByteBuf(data, n)));
}

void Stream::fill(std::size_t need) {
    auto& proc = stack_->process();
    while (available() < need) {
        auto pkt = stack_->port_->recv_from(peer_, rx_);
        PADICO_CHECK(pkt.has_value(), "stream closed while reading");
        proc.clock().merge(pkt->deliver_time);
        proc.clock().advance(stack_->costs().per_msg_recv);
        buffered_.append(pkt->payload);
    }
}

util::Message Stream::read_msg(std::size_t n) {
    PADICO_CHECK(valid(), "read on invalid stream");
    fill(n);
    util::Message out = buffered_.slice(buf_off_, n);
    buf_off_ += n;
    // Periodically compact the consumed prefix.
    if (buf_off_ == buffered_.size()) {
        buffered_ = util::Message();
        buf_off_ = 0;
    } else if (buf_off_ > (1u << 20)) {
        buffered_ = buffered_.slice(buf_off_, buffered_.size() - buf_off_);
        buf_off_ = 0;
    }
    return out;
}

void Stream::read(void* dst, std::size_t n) {
    read_msg(n).copy_out(0, dst, n);
}

} // namespace padico::sock
