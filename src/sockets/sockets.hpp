#pragma once
/// \file sockets.hpp
/// Substitute for the plain BSD socket / TCP path the paper uses for
/// distributed-oriented links (WAN, LAN): connection-oriented byte streams
/// with a connect/accept handshake, chunked transmission and per-chunk
/// protocol costs. One SocketStack per (process, segment) plays the role of
/// the kernel TCP stack bound to one interface.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "fabric/grid.hpp"

namespace padico::sock {

/// Software cost parameters of the TCP-like stack (era Linux 2.2 numbers;
/// with Fast-Ethernet's 50+10 us this lands on the paper's ~60 us TCP
/// latency and ~11.2 MB/s peak).
struct TcpCosts {
    SimTime per_msg_send = usec(5.0);
    SimTime per_msg_recv = usec(5.0);
    std::size_t chunk_size = 64 * 1024;
};

class Stream;
class Listener;

/// The TCP-like endpoint of one process on one distributed-oriented segment.
class SocketStack {
public:
    SocketStack(fabric::Process& proc, fabric::NetworkSegment& segment,
                const std::string& owner_tag = "tcp-stack",
                const TcpCosts& costs = {});

    fabric::Process& process() noexcept { return *proc_; }
    fabric::NetworkSegment& segment() noexcept { return *segment_; }
    const TcpCosts& costs() const noexcept { return costs_; }

    /// Bind a named service (host:port analogue) and publish it.
    Listener listen(const std::string& service);

    /// Connect to a published service; blocks until the listener exists and
    /// the SYN/ACK handshake completes (one modeled round-trip).
    Stream connect(const std::string& service);

private:
    friend class Listener;
    friend class Stream;

    fabric::Process* proc_;
    fabric::NetworkSegment* segment_;
    TcpCosts costs_;
    fabric::PortRef port_;
    std::atomic<std::uint64_t> next_conn_{0};
};

/// A connected, ordered, reliable byte stream.
class Stream {
public:
    Stream() = default;

    bool valid() const noexcept { return stack_ != nullptr; }
    fabric::ProcessId peer() const noexcept { return peer_; }

    /// Write the whole message (chunked into MTU-sized packets).
    void write(util::Message msg);
    void write(const void* data, std::size_t n);

    /// Read exactly \p n bytes as a (possibly zero-copy) message.
    util::Message read_msg(std::size_t n);
    /// Read exactly \p n bytes into \p dst.
    void read(void* dst, std::size_t n);

    /// Bytes currently buffered without blocking.
    std::size_t available() const noexcept { return buffered_.size() - buf_off_; }

private:
    friend class SocketStack;
    friend class Listener;
    Stream(SocketStack& s, fabric::ProcessId peer, fabric::ChannelId tx,
           fabric::ChannelId rx)
        : stack_(&s), peer_(peer), tx_(tx), rx_(rx) {}

    void fill(std::size_t need);

    SocketStack* stack_ = nullptr;
    fabric::ProcessId peer_ = fabric::kNoProcess;
    fabric::ChannelId tx_ = 0;
    fabric::ChannelId rx_ = 0;
    util::Message buffered_;
    std::size_t buf_off_ = 0;
};

/// Accepts incoming connections on a bound service.
class Listener {
public:
    /// Block until a connection arrives, complete the handshake.
    Stream accept();

    const std::string& service() const noexcept { return service_; }

private:
    friend class SocketStack;
    Listener(SocketStack& s, std::string service, fabric::ChannelId ch)
        : stack_(&s), service_(std::move(service)), listen_ch_(ch) {}

    SocketStack* stack_;
    std::string service_;
    fabric::ChannelId listen_ch_;
};

} // namespace padico::sock
