#include "mpi/topomap.hpp"

#include <algorithm>

#include "fabric/netmodel.hpp"
#include "fabric/topology.hpp"

namespace padico::mpi {

namespace {

/// Fold the best shared segment between two machines into a Link estimate.
/// Pairs with no direct segment (relay-only paths) are modeled with WAN
/// defaults -- the MPI layer cannot reach them anyway, so the estimate only
/// has to be sane, not exact.
TopoMap::Link link_between(fabric::Grid& g, const fabric::Machine& a,
                           const fabric::Machine& b, SimTime mpi_per_msg) {
    TopoMap::Link l;
    l.per_msg = mpi_per_msg;
    auto segs = g.common_segments(a, b);
    if (segs.empty()) {
        const fabric::LinkParams p = fabric::default_params(fabric::NetTech::Wan);
        l.mb = fabric::attainable_mb(p);
        l.latency = p.latency;
        return l;
    }
    const fabric::NetworkSegment* s = segs.front();
    const fabric::LinkParams& p = s->params();
    const ptm::WireCosts w = ptm::wire_costs_for(*s);
    l.mb = fabric::attainable_mb(p);
    l.latency = p.latency;
    l.rendezvous = w.rendezvous_threshold;
    l.rendezvous_cost = 2 * p.latency + w.rendezvous_cpu;
    l.per_msg = mpi_per_msg + w.per_msg_send + w.per_msg_recv;
    return l;
}

/// Hop distance between two zones through their lowest common ancestor.
int zone_distance(const fabric::Zone* a, const fabric::Zone* b) {
    if (a == b) return 0;
    int da = a->depth(), db = b->depth(), hops = 0;
    while (da > db) { a = a->parent(); --da; ++hops; }
    while (db > da) { b = b->parent(); --db; ++hops; }
    while (a != b && a != nullptr && b != nullptr) {
        a = a->parent();
        b = b->parent();
        hops += 2;
    }
    return hops;
}

} // namespace

std::shared_ptr<const TopoMap> TopoMap::build(ptm::Runtime& rt,
                                              const std::vector<fabric::ProcessId>& members,
                                              SimTime mpi_per_msg) {
    auto tm = std::make_shared<TopoMap>();
    fabric::Grid& g = rt.grid();
    const std::size_t n = members.size();
    tm->cluster_of_.assign(n, 0);

    // The Circuit rendezvous already proved every member exists, so
    // wait_process returns promptly and every rank derives the same map.
    std::vector<const fabric::Machine*> mach(n);
    for (std::size_t i = 0; i < n; ++i)
        mach[i] = &g.wait_process(members[i]).machine();

    // Cluster = distinct leaf zone, numbered by first appearance in rank
    // order (so cluster 0 contains rank 0 and leaders are min ranks).
    std::vector<const fabric::Zone*> zones;
    fabric::Topology* topo = g.topology();
    bool flat = topo == nullptr;
    if (!flat) {
        for (std::size_t i = 0; i < n; ++i) {
            const fabric::Zone* z = topo->zone_of(*mach[i]);
            if (z == nullptr || z->kind() == fabric::ZoneKind::Flat) {
                flat = true;
                break;
            }
            auto it = std::find(zones.begin(), zones.end(), z);
            if (it == zones.end()) {
                zones.push_back(z);
                it = std::prev(zones.end());
            }
            tm->cluster_of_[i] = static_cast<int>(it - zones.begin());
        }
    }
    if (flat) {
        zones.clear();
        std::fill(tm->cluster_of_.begin(), tm->cluster_of_.end(), 0);
    }
    tm->zoned_ = !flat;

    const std::size_t nc = flat ? (n != 0 ? 1 : 0) : zones.size();
    tm->cluster_ranks_.assign(nc, {});
    for (std::size_t i = 0; i < n; ++i)
        tm->cluster_ranks_[static_cast<std::size_t>(tm->cluster_of_[i])].push_back(
            static_cast<int>(i));
    tm->leaders_.reserve(nc);
    for (const auto& cr : tm->cluster_ranks_) tm->leaders_.push_back(cr.front());

    // Contiguity: each cluster must be one unbroken rank interval for the
    // hierarchical reduction order to match the flat tree's.
    tm->contiguous_ = true;
    for (const auto& cr : tm->cluster_ranks_)
        if (cr.back() - cr.front() + 1 != static_cast<int>(cr.size()))
            tm->contiguous_ = false;

    // Inter-cluster distance matrix (zone-tree hops via the LCA).
    tm->dist_.assign(nc * nc, 0);
    if (!flat) {
        for (std::size_t a = 0; a < nc; ++a)
            for (std::size_t b = a + 1; b < nc; ++b) {
                const int d = zone_distance(zones[a], zones[b]);
                tm->dist_[a * nc + b] = d;
                tm->dist_[b * nc + a] = d;
            }
    }

    // Link estimates: intra from the first two co-clustered machines,
    // inter from the first two leaders' machines.
    tm->intra_.assign(nc, Link{});
    for (std::size_t c = 0; c < nc; ++c) {
        const auto& cr = tm->cluster_ranks_[c];
        if (cr.size() >= 2)
            tm->intra_[c] = link_between(g, *mach[static_cast<std::size_t>(cr[0])],
                                         *mach[static_cast<std::size_t>(cr[1])], mpi_per_msg);
        else
            tm->intra_[c].per_msg = mpi_per_msg;
    }
    if (nc >= 2)
        tm->inter_ = link_between(g, *mach[static_cast<std::size_t>(tm->leaders_[0])],
                                  *mach[static_cast<std::size_t>(tm->leaders_[1])], mpi_per_msg);
    else if (nc == 1 && !tm->intra_.empty())
        tm->inter_ = tm->intra_[0];
    return tm;
}

} // namespace padico::mpi
