#include "mpi/mpi.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "util/strings.hpp"

namespace padico::mpi {

namespace detail {

int coll_tag(std::uint64_t& seq) {
    // Collectives get tags above the user range, cycling through a window
    // wide enough that in-flight collectives can never alias.  The stride
    // of 4 leaves each collective a private window of sub-tags for its
    // internal phases.
    return kMaxUserTag + 1 +
           static_cast<int>(seq++ % (1u << 10)) * 4;
}

void check_overlap(const void* in, std::size_t in_bytes, const void* out,
                   std::size_t out_bytes) {
    const auto a = reinterpret_cast<std::uintptr_t>(in);
    const auto b = reinterpret_cast<std::uintptr_t>(out);
    if (a == b && in_bytes == out_bytes) return; // exact alias: in place
    const bool disjoint = a + in_bytes <= b || b + out_bytes <= a;
    PADICO_CHECK(disjoint,
                 "collective in/out buffers overlap without aliasing exactly");
}

} // namespace detail

// ---------------------------------------------------------------------------
// Comm

namespace {

CollMode initial_coll_mode() {
    if (const char* e = std::getenv("PADICO_MPI_COLL")) {
        if (std::string_view(e) == "flat") return CollMode::kFlat;
        if (std::string_view(e) == "hier") return CollMode::kHier;
    }
    return CollMode::kAuto;
}

} // namespace

Comm::Comm(ptm::Runtime& rt, const std::string& name,
           std::vector<fabric::ProcessId> members, MpiCosts costs)
    : circuit_(std::make_shared<ptm::Circuit>(rt, name, std::move(members))),
      costs_(costs), coll_seq_(std::make_shared<std::uint64_t>(0)),
      // The Circuit rendezvous above guarantees every member process
      // exists, so the cluster map resolves without communication.
      topo_(TopoMap::build(rt, circuit_->members(), costs.per_msg)),
      coll_mode_(initial_coll_mode()) {}

void Comm::send_msg(util::Message msg, int dst, int tag) {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    PADICO_CHECK(tag >= 0, "user tags are non-negative");
    runtime().process().clock().advance(costs_.per_msg);
    circuit_->send(dst, tag, std::move(msg));
}

util::Message Comm::recv_msg(int src, int tag, Status* status) {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    int got_src = kAnySource, got_tag = kAnyTag;
    util::Message m = circuit_->recv(src, tag, &got_src, &got_tag);
    runtime().process().clock().advance(costs_.per_msg);
    if (status != nullptr)
        *status = Status{got_src, got_tag, m.size()};
    return m;
}

std::optional<util::Message> Comm::try_recv_msg(int src, int tag,
                                                Status* status) {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    int got_src = kAnySource, got_tag = kAnyTag;
    auto m = circuit_->try_recv(src, tag, &got_src, &got_tag);
    if (!m.has_value()) return std::nullopt;
    runtime().process().clock().advance(costs_.per_msg);
    if (status != nullptr)
        *status = Status{got_src, got_tag, m->size()};
    return m;
}

void Comm::send_bytes(const void* data, std::size_t n, int dst, int tag) {
    send_msg(util::to_message(util::ByteBuf(data, n)), dst, tag);
}

Status Comm::recv_bytes(void* data, std::size_t n, int src, int tag) {
    Status st;
    util::Message m = recv_msg(src, tag, &st);
    PADICO_CHECK(m.size() <= n,
                 util::strfmt("message of %zu bytes truncates %zu-byte buffer",
                              m.size(), n));
    m.copy_out(0, data, m.size());
    return st;
}

// ---------------------------------------------------------------------------
// Nonblocking

struct Request::Impl {
    // Completed operations only carry a status.
    bool done = false;
    Status status;
    // Pending receive.
    Comm* comm = nullptr;
    void* data = nullptr;
    std::size_t cap = 0;
    int src = kAnySource;
    int tag = kAnyTag;
};

Request Comm::isend(util::Message msg, int dst, int tag) {
    // Sends are buffered by the fabric: they complete immediately, as an
    // eager-protocol MPI send does.
    const std::size_t n = msg.size();
    send_msg(std::move(msg), dst, tag);
    Request r;
    r.impl_ = std::make_shared<Request::Impl>();
    r.impl_->done = true;
    r.impl_->status = Status{rank(), tag, n};
    return r;
}

Request Comm::isend_bytes(const void* data, std::size_t n, int dst, int tag) {
    return isend(util::to_message(util::ByteBuf(data, n)), dst, tag);
}

Request Comm::irecv_bytes(void* data, std::size_t n, int src, int tag) {
    Request r;
    r.impl_ = std::make_shared<Request::Impl>();
    r.impl_->comm = this;
    r.impl_->data = data;
    r.impl_->cap = n;
    r.impl_->src = src;
    r.impl_->tag = tag;
    return r;
}

Status Request::wait() {
    PADICO_CHECK(impl_ != nullptr, "wait on null request");
    if (!impl_->done) {
        impl_->status =
            impl_->comm->recv_bytes(impl_->data, impl_->cap, impl_->src,
                                    impl_->tag);
        impl_->done = true;
    }
    return impl_->status;
}

bool Request::test() {
    PADICO_CHECK(impl_ != nullptr, "test on null request");
    if (impl_->done) return true;
    Status st;
    auto m = impl_->comm->try_recv_msg(impl_->src, impl_->tag, &st);
    if (!m.has_value()) return false;
    PADICO_CHECK(m->size() <= impl_->cap, "message truncates irecv buffer");
    m->copy_out(0, impl_->data, m->size());
    impl_->status = st;
    impl_->done = true;
    return true;
}

void wait_all(std::span<Request> reqs) {
    for (auto& r : reqs) r.wait();
}

// ---------------------------------------------------------------------------
// Collectives: group primitives
//
// A "group" is a subset of this communicator's ranks (identical vector on
// every member, typically one cluster's ranks or the per-cluster leaders)
// operating over one link class.  The primitives pick their shape -- star,
// binomial tree, or long-message pipelined variants -- from the TopoMap's
// link cost model; the choice is deterministic because every member derives
// the same map and the same sizes.

namespace {

int log2ceil(int p) {
    int l = 0;
    while ((1 << l) < p) ++l;
    return l;
}

int index_of(const std::vector<int>& g, int rank) {
    for (std::size_t i = 0; i < g.size(); ++i)
        if (g[i] == rank) return static_cast<int>(i);
    PADICO_CHECK(false, "rank not in collective group");
    return -1;
}

enum class GroupAlgo { kStar, kBinomial, kScatterAllgather };

/// Star vs binomial: a star pays one latency plus p-1 back-to-back
/// occupancies at the root; a binomial tree chains ceil(log2 p) full
/// message times (each including the link latency and any rendezvous
/// round-trip).
GroupAlgo pick_tree(const TopoMap::Link& l, std::size_t n, int p) {
    if (p <= 2) return GroupAlgo::kStar;
    const SimTime star =
        l.latency + static_cast<SimTime>(p - 1) * l.occupancy(n);
    const SimTime tree = static_cast<SimTime>(log2ceil(p)) * l.msg_time(n);
    return star <= tree ? GroupAlgo::kStar : GroupAlgo::kBinomial;
}

/// Long-message bcast: van de Geijn scatter + ring allgather beats a tree
/// once per-byte time dominates per-message time -- its chunks also stay
/// under the rendezvous threshold longer, which msg_time() accounts for.
GroupAlgo pick_bcast(const TopoMap::Link& l, std::size_t n, int p,
                     bool allow_sag) {
    const GroupAlgo t = pick_tree(l, n, p);
    if (!allow_sag || p < 3 || n < static_cast<std::size_t>(p) * 64) return t;
    const int lg = log2ceil(p);
    const SimTime base =
        t == GroupAlgo::kStar
            ? l.latency + static_cast<SimTime>(p - 1) * l.occupancy(n)
            : static_cast<SimTime>(lg) * l.msg_time(n);
    const SimTime sag =
        static_cast<SimTime>(lg) * l.msg_time(n / 2) +
        static_cast<SimTime>(p - 1) *
            l.msg_time(n / static_cast<std::size_t>(p));
    return sag < base ? GroupAlgo::kScatterAllgather : t;
}

/// Ring allreduce (reduce-scatter + allgather) pays 2(p-1) slice messages
/// against the flat composition's 2 ceil(log2 p) full-size ones.
bool pick_ring(const TopoMap::Link& l, std::size_t n, int p) {
    if (p < 3 || n < static_cast<std::size_t>(p) * 64) return false;
    const SimTime flat2 =
        2 * static_cast<SimTime>(log2ceil(p)) * l.msg_time(n);
    const SimTime ring = 2 * static_cast<SimTime>(p - 1) *
                         l.msg_time(n / static_cast<std::size_t>(p));
    return ring < flat2;
}

/// Broadcast within group \p g from g[root_idx].  Every member of g calls
/// this; uses \p tag and (scatter-allgather only) tag + 1.
void group_bcast(Comm& c, int tag, const std::vector<int>& g, int root_idx,
                 void* data, std::size_t n, const TopoMap::Link& link,
                 bool allow_sag) {
    const int p = static_cast<int>(g.size());
    if (p <= 1) return;
    const int me = index_of(g, c.rank());
    const GroupAlgo a = pick_bcast(link, n, p, allow_sag);
    if (a == GroupAlgo::kStar) {
        if (me == root_idx) {
            for (int i = 0; i < p; ++i)
                if (i != root_idx) c.send_bytes(data, n, g[i], tag);
        } else {
            c.recv_bytes(data, n, g[root_idx], tag);
        }
        return;
    }
    const int rot = (me - root_idx + p) % p;
    if (a == GroupAlgo::kBinomial) {
        int mask = 1;
        while (mask < p) {
            if (rot & mask) {
                c.recv_bytes(data, n, g[((rot & ~mask) + root_idx) % p], tag);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while (mask > 0) {
            const int child = rot | mask;
            if (child < p && !(rot & mask))
                c.send_bytes(data, n, g[(child + root_idx) % p], tag);
            mask >>= 1;
        }
        return;
    }
    // Scatter-allgather: binomial scatter of p contiguous slices (rotated
    // rank r ends up owning slice r), then a ring allgather on tag + 1.
    auto* bytes = static_cast<unsigned char*>(data);
    std::vector<std::size_t> off(static_cast<std::size_t>(p) + 1, 0);
    for (int i = 0; i < p; ++i)
        off[static_cast<std::size_t>(i) + 1] =
            off[static_cast<std::size_t>(i)] +
            n / static_cast<std::size_t>(p) +
            (static_cast<std::size_t>(i) < n % static_cast<std::size_t>(p)
                 ? 1
                 : 0);
    int mask = 1;
    while (mask < p) {
        if (rot & mask) {
            const int hi = std::min(rot + mask, p);
            c.recv_bytes(bytes + off[static_cast<std::size_t>(rot)],
                         off[static_cast<std::size_t>(hi)] -
                             off[static_cast<std::size_t>(rot)],
                         g[((rot & ~mask) + root_idx) % p], tag);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        const int child = rot | mask;
        if (child < p && !(rot & mask)) {
            const int hi = std::min(child + mask, p);
            c.send_bytes(bytes + off[static_cast<std::size_t>(child)],
                         off[static_cast<std::size_t>(hi)] -
                             off[static_cast<std::size_t>(child)],
                         g[(child + root_idx) % p], tag);
        }
        mask >>= 1;
    }
    const int right = g[((rot + 1) % p + root_idx) % p];
    const int left = g[((rot - 1 + p) % p + root_idx) % p];
    for (int s = 0; s < p - 1; ++s) {
        const auto ss = static_cast<std::size_t>((rot - s + 2 * p) % p);
        const auto rs = static_cast<std::size_t>((rot - s - 1 + 2 * p) % p);
        c.send_bytes(bytes + off[ss], off[ss + 1] - off[ss], right, tag + 1);
        c.recv_bytes(bytes + off[rs], off[rs + 1] - off[rs], left, tag + 1);
    }
}

/// Reduce within group \p g onto g[root_idx]'s \p acc.  The partial-combine
/// order is the rotated ascending group order for both shapes, so star and
/// binomial agree for associative operators -- and match the flat tree when
/// the groups partition the rank space into contiguous ascending intervals.
void group_reduce(Comm& c, int tag, const std::vector<int>& g, int root_idx,
                  void* acc, std::size_t elem, std::size_t count,
                  Comm::Combiner comb, Op op, const TopoMap::Link& link) {
    const int p = static_cast<int>(g.size());
    if (p <= 1) return;
    const std::size_t n = elem * count;
    const int me = index_of(g, c.rank());
    const int rot = (me - root_idx + p) % p;
    std::vector<unsigned char> part(n);
    if (pick_tree(link, n, p) == GroupAlgo::kStar) {
        if (rot == 0) {
            for (int i = 1; i < p; ++i) {
                c.recv_bytes(part.data(), n, g[(root_idx + i) % p], tag);
                comb(op, acc, part.data(), count);
            }
        } else {
            c.send_bytes(acc, n, g[root_idx], tag);
        }
        return;
    }
    for (int mask = 1; mask < p; mask <<= 1) {
        if (rot & mask) {
            c.send_bytes(acc, n, g[((rot & ~mask) + root_idx) % p], tag);
            break;
        }
        const int child = rot | mask;
        if (child < p) {
            c.recv_bytes(part.data(), n, g[(child + root_idx) % p], tag);
            comb(op, acc, part.data(), count);
        }
    }
}

/// Bandwidth-optimal ring allreduce over the whole communicator (cluster-
/// local long-message variant).  Slice combine order varies per slice, so
/// the cost model only selects it where the operator is expected to be
/// commutative-associative (like MPI's own ring algorithms); it never runs
/// on topology-free grids.
void ring_allreduce(Comm& c, int tag, void* data, std::size_t elem,
                    std::size_t count, Comm::Combiner comb, Op op) {
    const int p = c.size();
    const int me = c.rank();
    auto* bytes = static_cast<unsigned char*>(data);
    std::vector<std::size_t> cnt(static_cast<std::size_t>(p));
    std::vector<std::size_t> off(static_cast<std::size_t>(p) + 1, 0);
    for (int i = 0; i < p; ++i) {
        cnt[static_cast<std::size_t>(i)] =
            count / static_cast<std::size_t>(p) +
            (static_cast<std::size_t>(i) < count % static_cast<std::size_t>(p)
                 ? 1
                 : 0);
        off[static_cast<std::size_t>(i) + 1] =
            off[static_cast<std::size_t>(i)] + cnt[static_cast<std::size_t>(i)];
    }
    const int right = (me + 1) % p, left = (me - 1 + p) % p;
    std::vector<unsigned char> part(
        (count / static_cast<std::size_t>(p) + 1) * elem);
    // Reduce-scatter: after p-1 steps rank me owns the full reduction of
    // slice (me+1) mod p.
    for (int s = 0; s < p - 1; ++s) {
        const auto ss = static_cast<std::size_t>((me - s + 2 * p) % p);
        const auto rs = static_cast<std::size_t>((me - s - 1 + 2 * p) % p);
        c.send_bytes(bytes + off[ss] * elem, cnt[ss] * elem, right, tag);
        c.recv_bytes(part.data(), cnt[rs] * elem, left, tag);
        comb(op, bytes + off[rs] * elem, part.data(), cnt[rs]);
    }
    // Ring allgather of the reduced slices.
    for (int s = 0; s < p - 1; ++s) {
        const auto ss = static_cast<std::size_t>((me + 1 - s + 2 * p) % p);
        const auto rs = static_cast<std::size_t>((me - s + 2 * p) % p);
        c.send_bytes(bytes + off[ss] * elem, cnt[ss] * elem, right, tag + 1);
        c.recv_bytes(bytes + off[rs] * elem, cnt[rs] * elem, left, tag + 1);
    }
}

// Little-endian framing helpers for the leader-aggregated bundles.

void put_u32(std::vector<unsigned char>& v, std::uint32_t x) {
    for (int i = 0; i < 4; ++i)
        v.push_back(static_cast<unsigned char>(x >> (8 * i)));
}

void put_u64(std::vector<unsigned char>& v, std::uint64_t x) {
    for (int i = 0; i < 8; ++i)
        v.push_back(static_cast<unsigned char>(x >> (8 * i)));
}

void put_msg(std::vector<unsigned char>& v, const util::Message& m) {
    const std::size_t off = v.size();
    v.resize(off + m.size());
    m.copy_out(0, v.data() + off, m.size());
}

std::uint32_t get_u32(const util::Message& m, std::size_t off) {
    unsigned char b[4];
    m.copy_out(off, b, 4);
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return x;
}

std::uint64_t get_u64(const util::Message& m, std::size_t off) {
    unsigned char b[8];
    m.copy_out(off, b, 8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return x;
}

} // namespace

// ---------------------------------------------------------------------------
// Collectives (byte level)

void Comm::barrier() {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    const int tag = detail::coll_tag(*coll_seq_);
    const int n = size();
    if (!hier_active()) {
        // Dissemination barrier: ceil(log2 n) rounds.
        for (int k = 1; k < n; k <<= 1) {
            const int to = (rank() + k) % n;
            const int from = (rank() - k + n) % n;
            send_msg(util::to_message(util::ByteBuf("b", 1)), to, tag);
            recv_msg(from, tag);
        }
        return;
    }
    // Multilevel barrier: members check in with their cluster leader, the
    // leaders run a star gather + release through leader 0 over the WAN
    // (2(C-1) crossings, two WAN latencies on the critical path -- a flat
    // dissemination barrier crosses the WAN in every round), then each
    // leader releases its members.
    const TopoMap& m = *topo_;
    const auto& cr = m.cluster_ranks(m.cluster_of(rank()));
    const int leader = cr.front();
    char b = 'b';
    if (rank() != leader) {
        send_bytes(&b, 1, leader, tag);
        recv_bytes(&b, 1, leader, tag + 2);
        return;
    }
    for (int r : cr)
        if (r != rank()) recv_bytes(&b, 1, r, tag);
    const auto& leaders = m.leaders();
    if (rank() == leaders[0]) {
        for (std::size_t i = 1; i < leaders.size(); ++i)
            recv_bytes(&b, 1, leaders[i], tag + 1);
        for (std::size_t i = 1; i < leaders.size(); ++i)
            send_bytes(&b, 1, leaders[i], tag + 1);
    } else {
        send_bytes(&b, 1, leaders[0], tag + 1);
        recv_bytes(&b, 1, leaders[0], tag + 1);
    }
    for (int r : cr)
        if (r != rank()) send_bytes(&b, 1, r, tag + 2);
}

void Comm::bcast_bytes(void* data, std::size_t n, int root) {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    PADICO_CHECK(root >= 0 && root < size(), "bad root");
    const int tag = detail::coll_tag(*coll_seq_);
    const int sz = size();
    const TopoMap& m = *topo_;
    if (coll_mode_ != CollMode::kFlat && m.zoned()) {
        if (m.hierarchical()) {
            // WAN phase among per-cluster representatives (the root stands
            // in for its own cluster, so a non-leader root costs no extra
            // local hop), then cluster-local dissemination.  WAN crossings:
            // exactly clusters-1.
            const int rc = m.cluster_of(root);
            const int mc = m.cluster_of(rank());
            std::vector<int> reps;
            reps.reserve(static_cast<std::size_t>(m.clusters()));
            for (int c = 0; c < m.clusters(); ++c)
                reps.push_back(c == rc ? root : m.leader_of(c));
            const int rep = reps[static_cast<std::size_t>(mc)];
            if (rank() == rep)
                group_bcast(*this, tag, reps, rc, data, n, m.inter(), false);
            const auto& cr = m.cluster_ranks(mc);
            group_bcast(*this, tag + 1, cr, index_of(cr, rep), data, n,
                        m.intra(mc), true);
        } else {
            // Zoned single cluster: let the cost model pick star, binomial,
            // or the long-message scatter-allgather pipeline.
            group_bcast(*this, tag, m.cluster_ranks(0), root, data, n,
                        m.intra(0), true);
        }
        return;
    }
    // Flat binomial tree rooted at 0 (relative ranks) -- the legacy
    // algorithm, bit-identical in virtual time on topology-free grids.
    const int me = (rank() - root + sz) % sz;
    int mask = 1;
    while (mask < sz) {
        if (me & mask) {
            const int parent = ((me & ~mask) + root) % sz;
            recv_bytes(data, n, parent, tag);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        const int child = me | mask;
        if (child < sz && !(me & mask))
            send_bytes(data, n, (child + root) % sz, tag);
        mask >>= 1;
    }
}

void Comm::reduce_bytes(const void* in, void* out, std::size_t elem,
                        std::size_t count, Combiner comb, Op op, int root) {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    PADICO_CHECK(root >= 0 && root < size(), "bad root");
    const int tag = detail::coll_tag(*coll_seq_);
    const int sz = size();
    const std::size_t n = elem * count;
    const TopoMap& m = *topo_;
    std::vector<unsigned char> acc(n);
    if (n != 0) std::memcpy(acc.data(), in, n);
    // Hierarchical combining preserves the flat combine order only when
    // clusters are contiguous in rank space and the root leads its own
    // cluster; otherwise fall back to the flat tree so a reduction is
    // order-identical in every mode (the determinism contract for
    // non-commutative operators).
    const bool hier = hier_active() && m.contiguous() &&
                      root == m.leader_of(m.cluster_of(root));
    if (hier) {
        const int mc = m.cluster_of(rank());
        group_reduce(*this, tag, m.cluster_ranks(mc), 0, acc.data(), elem,
                     count, comb, op, m.intra(mc));
        if (rank() == m.leader_of(mc))
            group_reduce(*this, tag + 1, m.leaders(),
                         m.cluster_of(root), acc.data(), elem, count, comb,
                         op, m.inter());
    } else {
        // Flat binomial tree: children push partials toward the root.
        const int me = (rank() - root + sz) % sz;
        std::vector<unsigned char> part(n);
        for (int mask = 1; mask < sz; mask <<= 1) {
            if (me & mask) {
                send_bytes(acc.data(), n, ((me & ~mask) + root) % sz, tag);
                break;
            }
            const int child = me | mask;
            if (child < sz) {
                recv_bytes(part.data(), n, (child + root) % sz, tag);
                comb(op, acc.data(), part.data(), count);
            }
        }
    }
    if (rank() == root && n != 0) std::memcpy(out, acc.data(), n);
}

void Comm::allreduce_bytes(const void* in, void* out, std::size_t elem,
                           std::size_t count, Combiner comb, Op op) {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    const std::size_t n = elem * count;
    const TopoMap& m = *topo_;
    const bool zoned = coll_mode_ != CollMode::kFlat && m.zoned();
    if (zoned && !m.hierarchical() && pick_ring(m.intra(0), n, size())) {
        // Cluster-local long-message variant: ring allreduce.
        const int tag = detail::coll_tag(*coll_seq_);
        if (out != in && n != 0) std::memcpy(out, in, n);
        ring_allreduce(*this, tag, out, elem, count, comb, op);
        return;
    }
    if (!hier_active() || !m.contiguous()) {
        // Flat composition (also the non-contiguous fallback): reduce to
        // rank 0, then broadcast -- the legacy double traversal.
        reduce_bytes(in, out, elem, count, comb, op, 0);
        bcast_bytes(out, n, 0);
        return;
    }
    // Fused multilevel allreduce: one traversal up (cluster reduce, then a
    // leaders-only WAN reduce) and one down (WAN bcast among leaders, then
    // cluster bcast) -- 2(C-1) WAN crossings and two WAN latencies on the
    // critical path, with no reduce+bcast double WAN traversal.  Combine
    // order equals the flat tree rooted at 0 (clusters are contiguous and
    // rank 0 leads cluster 0).
    const int tag = detail::coll_tag(*coll_seq_);
    const int tag2 = detail::coll_tag(*coll_seq_);
    const int mc = m.cluster_of(rank());
    const auto& cr = m.cluster_ranks(mc);
    if (out != in && n != 0) std::memcpy(out, in, n);
    group_reduce(*this, tag, cr, 0, out, elem, count, comb, op, m.intra(mc));
    if (rank() == m.leader_of(mc)) {
        group_reduce(*this, tag + 1, m.leaders(), 0, out, elem, count, comb,
                     op, m.inter());
        group_bcast(*this, tag + 2, m.leaders(), 0, out, n, m.inter(), false);
    }
    group_bcast(*this, tag2, cr, 0, out, n, m.intra(mc), true);
}

void Comm::gather_bytes(const void* in, void* out, std::size_t block,
                        int root) {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    PADICO_CHECK(root >= 0 && root < size(), "bad root");
    const int tag = detail::coll_tag(*coll_seq_);
    const int sz = size();
    auto* ob = static_cast<unsigned char*>(out);
    if (!hier_active()) {
        // Flat: the root receives one block per rank, ascending.
        if (rank() == root) {
            for (int r = 0; r < sz; ++r) {
                if (r == rank()) {
                    if (block != 0)
                        std::memcpy(ob + static_cast<std::size_t>(r) * block,
                                    in, block);
                } else {
                    recv_bytes(ob + static_cast<std::size_t>(r) * block, block,
                               r, tag);
                }
            }
        } else {
            send_bytes(in, block, root, tag);
        }
        return;
    }
    // Multilevel gather: the root's own cluster sends directly; every other
    // cluster assembles one bundle at its leader (cluster-rank order) and
    // ships it across the WAN once.  WAN crossings: exactly clusters-1.
    const TopoMap& m = *topo_;
    const int mc = m.cluster_of(rank());
    const int rc = m.cluster_of(root);
    if (rank() == root) {
        for (int r : m.cluster_ranks(rc)) {
            if (r == rank()) {
                if (block != 0)
                    std::memcpy(ob + static_cast<std::size_t>(r) * block, in,
                                block);
            } else {
                recv_bytes(ob + static_cast<std::size_t>(r) * block, block, r,
                           tag);
            }
        }
        for (int c = 0; c < m.clusters(); ++c) {
            if (c == rc) continue;
            const auto& oc = m.cluster_ranks(c);
            std::vector<unsigned char> bundle(oc.size() * block);
            recv_bytes(bundle.data(), bundle.size(), m.leader_of(c), tag + 1);
            for (std::size_t i = 0; i < oc.size(); ++i)
                std::memcpy(ob + static_cast<std::size_t>(oc[i]) * block,
                            bundle.data() + i * block, block);
        }
        return;
    }
    if (mc == rc) {
        send_bytes(in, block, root, tag);
        return;
    }
    const int leader = m.leader_of(mc);
    if (rank() == leader) {
        const auto& cr = m.cluster_ranks(mc);
        std::vector<unsigned char> bundle(cr.size() * block);
        for (std::size_t i = 0; i < cr.size(); ++i) {
            if (cr[i] == rank()) {
                if (block != 0)
                    std::memcpy(bundle.data() + i * block, in, block);
            } else {
                recv_bytes(bundle.data() + i * block, block, cr[i], tag);
            }
        }
        send_bytes(bundle.data(), bundle.size(), root, tag + 1);
    } else {
        send_bytes(in, block, leader, tag);
    }
}

void Comm::scatter_bytes(const void* in, void* out, std::size_t block,
                         int root) {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    PADICO_CHECK(root >= 0 && root < size(), "bad root");
    const int tag = detail::coll_tag(*coll_seq_);
    const int sz = size();
    const auto* ib = static_cast<const unsigned char*>(in);
    if (!hier_active()) {
        // Flat: the root sends one block per rank, ascending.
        if (rank() == root) {
            for (int r = 0; r < sz; ++r) {
                if (r == rank()) {
                    if (block != 0)
                        std::memcpy(out,
                                    ib + static_cast<std::size_t>(r) * block,
                                    block);
                } else {
                    send_bytes(ib + static_cast<std::size_t>(r) * block, block,
                               r, tag);
                }
            }
        } else {
            recv_bytes(out, block, root, tag);
        }
        return;
    }
    // Multilevel scatter (mirror of gather): one bundle per remote cluster
    // crosses the WAN to the leader, which fans blocks out locally.
    const TopoMap& m = *topo_;
    const int mc = m.cluster_of(rank());
    const int rc = m.cluster_of(root);
    if (rank() == root) {
        for (int r : m.cluster_ranks(rc)) {
            if (r == rank()) {
                if (block != 0)
                    std::memcpy(out, ib + static_cast<std::size_t>(r) * block,
                                block);
            } else {
                send_bytes(ib + static_cast<std::size_t>(r) * block, block, r,
                           tag);
            }
        }
        for (int c = 0; c < m.clusters(); ++c) {
            if (c == rc) continue;
            const auto& oc = m.cluster_ranks(c);
            std::vector<unsigned char> bundle(oc.size() * block);
            for (std::size_t i = 0; i < oc.size(); ++i)
                std::memcpy(bundle.data() + i * block,
                            ib + static_cast<std::size_t>(oc[i]) * block,
                            block);
            send_bytes(bundle.data(), bundle.size(), m.leader_of(c), tag + 1);
        }
        return;
    }
    if (mc == rc) {
        recv_bytes(out, block, root, tag);
        return;
    }
    const int leader = m.leader_of(mc);
    if (rank() == leader) {
        const auto& cr = m.cluster_ranks(mc);
        std::vector<unsigned char> bundle(cr.size() * block);
        recv_bytes(bundle.data(), bundle.size(), root, tag + 1);
        for (std::size_t i = 0; i < cr.size(); ++i) {
            if (cr[i] == rank()) {
                if (block != 0)
                    std::memcpy(out, bundle.data() + i * block, block);
            } else {
                send_bytes(bundle.data() + i * block, block, cr[i], tag + 2);
            }
        }
    } else {
        recv_bytes(out, block, leader, tag + 2);
    }
}

void Comm::allgather_bytes(const void* in, void* out, std::size_t block) {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    const int sz = size();
    if (!hier_active()) {
        // Flat composition: gather to rank 0, then broadcast the image.
        gather_bytes(in, out, block, 0);
        bcast_bytes(out, block * static_cast<std::size_t>(sz), 0);
        return;
    }
    // Multilevel allgather: cluster gather at each leader (blocks placed at
    // their global offsets), leader bundles to leader 0, full image back to
    // the leaders (2(C-1) WAN crossings total), then cluster bcast.
    const int tag = detail::coll_tag(*coll_seq_);
    const int tag2 = detail::coll_tag(*coll_seq_);
    const TopoMap& m = *topo_;
    const int mc = m.cluster_of(rank());
    const auto& cr = m.cluster_ranks(mc);
    const int leader = m.leader_of(mc);
    auto* ob = static_cast<unsigned char*>(out);
    const std::size_t total = block * static_cast<std::size_t>(sz);
    if (rank() == leader) {
        for (int r : cr) {
            if (r == rank()) {
                if (block != 0)
                    std::memcpy(ob + static_cast<std::size_t>(r) * block, in,
                                block);
            } else {
                recv_bytes(ob + static_cast<std::size_t>(r) * block, block, r,
                           tag);
            }
        }
        const auto& leaders = m.leaders();
        if (rank() == leaders[0]) {
            for (std::size_t c = 1; c < leaders.size(); ++c) {
                const auto& oc = m.cluster_ranks(static_cast<int>(c));
                std::vector<unsigned char> bundle(oc.size() * block);
                recv_bytes(bundle.data(), bundle.size(), leaders[c], tag + 1);
                for (std::size_t i = 0; i < oc.size(); ++i)
                    std::memcpy(ob + static_cast<std::size_t>(oc[i]) * block,
                                bundle.data() + i * block, block);
            }
            for (std::size_t c = 1; c < leaders.size(); ++c)
                send_bytes(ob, total, leaders[c], tag + 2);
        } else {
            std::vector<unsigned char> bundle(cr.size() * block);
            for (std::size_t i = 0; i < cr.size(); ++i)
                std::memcpy(bundle.data() + i * block,
                            ob + static_cast<std::size_t>(cr[i]) * block,
                            block);
            send_bytes(bundle.data(), bundle.size(), leaders[0], tag + 1);
            recv_bytes(ob, total, leaders[0], tag + 2);
        }
    } else {
        send_bytes(in, block, leader, tag);
    }
    group_bcast(*this, tag2, cr, 0, ob, total, m.intra(mc), true);
}

std::vector<util::Message> Comm::alltoallv_msg(
    std::vector<util::Message> out) {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    PADICO_CHECK(out.size() == static_cast<std::size_t>(size()),
                 "alltoallv needs one message per rank");
    const int tag = detail::coll_tag(*coll_seq_);
    std::vector<util::Message> in(out.size());
    if (!hier_active()) {
        // Flat: sends are buffered -- issue them all, then drain receives.
        for (int r = 0; r < size(); ++r) {
            if (r == rank())
                in[static_cast<std::size_t>(r)] =
                    std::move(out[static_cast<std::size_t>(r)]);
            else
                send_msg(std::move(out[static_cast<std::size_t>(r)]), r, tag);
        }
        for (int r = 0; r < size(); ++r) {
            if (r == rank()) continue;
            in[static_cast<std::size_t>(r)] = recv_msg(r, tag);
        }
        return in;
    }
    // Multilevel alltoallv (the GridCCM redistribution path): same-cluster
    // payloads go direct; remote payloads are aggregated at the cluster
    // leader, exchanged leader-to-leader as one bundle per cluster pair
    // (C(C-1) WAN crossings instead of one per remote rank pair), and
    // fanned out locally.  Every bundle is sent even when empty so message
    // counts stay deterministic.
    const TopoMap& m = *topo_;
    const int mc = m.cluster_of(rank());
    const auto& cr = m.cluster_ranks(mc);
    const int leader = m.leader_of(mc);
    const int C = m.clusters();
    // Phase 1 (tag): same-cluster directs.
    for (int r : cr) {
        if (r == rank())
            in[static_cast<std::size_t>(r)] =
                std::move(out[static_cast<std::size_t>(r)]);
        else
            send_msg(std::move(out[static_cast<std::size_t>(r)]), r, tag);
    }
    if (rank() != leader) {
        // Phase 2 (tag+1): upload remote-destined payloads to the leader,
        // framed as [u32 dst, u64 len, bytes]*.
        std::vector<unsigned char> up;
        for (int dst = 0; dst < size(); ++dst) {
            if (m.cluster_of(dst) == mc) continue;
            put_u32(up, static_cast<std::uint32_t>(dst));
            put_u64(up, out[static_cast<std::size_t>(dst)].size());
            put_msg(up, out[static_cast<std::size_t>(dst)]);
        }
        send_bytes(up.data(), up.size(), leader, tag + 1);
        for (int r : cr)
            if (r != rank()) in[static_cast<std::size_t>(r)] = recv_msg(r, tag);
        // Phase 4 (tag+3): download bundle [u32 src, u64 len, bytes]*.
        util::Message dl = recv_msg(leader, tag + 3);
        std::size_t off = 0;
        while (off < dl.size()) {
            const auto src = static_cast<std::size_t>(get_u32(dl, off));
            const std::size_t len = get_u64(dl, off + 4);
            in[src] = dl.slice(off + 12, len);
            off += 12 + len;
        }
        return in;
    }
    // Leader: aggregate per destination cluster in source order (the leader
    // is the cluster minimum, so iterating cr ascending puts its own
    // payloads first), entries framed [u32 src, u32 dst, u64 len, bytes].
    std::vector<std::vector<unsigned char>> xfer(static_cast<std::size_t>(C));
    for (int r : cr) {
        if (r == rank()) {
            for (int dst = 0; dst < size(); ++dst) {
                const int dc = m.cluster_of(dst);
                if (dc == mc) continue;
                auto& x = xfer[static_cast<std::size_t>(dc)];
                put_u32(x, static_cast<std::uint32_t>(rank()));
                put_u32(x, static_cast<std::uint32_t>(dst));
                put_u64(x, out[static_cast<std::size_t>(dst)].size());
                put_msg(x, out[static_cast<std::size_t>(dst)]);
            }
        } else {
            util::Message up = recv_msg(r, tag + 1);
            std::size_t off = 0;
            while (off < up.size()) {
                const auto dst = get_u32(up, off);
                const std::size_t len = get_u64(up, off + 4);
                const int dc = m.cluster_of(static_cast<int>(dst));
                auto& x = xfer[static_cast<std::size_t>(dc)];
                put_u32(x, static_cast<std::uint32_t>(r));
                put_u32(x, dst);
                put_u64(x, len);
                put_msg(x, up.slice(off + 12, len));
                off += 12 + len;
            }
        }
    }
    // Phase 3 (tag+2): leader-to-leader bundle exchange; send all, then
    // receive in ascending cluster order.
    for (int c = 0; c < C; ++c) {
        if (c == mc) continue;
        const auto& x = xfer[static_cast<std::size_t>(c)];
        send_bytes(x.data(), x.size(), m.leader_of(c), tag + 2);
    }
    for (int r : cr)
        if (r != rank()) in[static_cast<std::size_t>(r)] = recv_msg(r, tag);
    std::vector<std::vector<unsigned char>> down(cr.size());
    for (int c = 0; c < C; ++c) {
        if (c == mc) continue;
        util::Message b = recv_msg(m.leader_of(c), tag + 2);
        std::size_t off = 0;
        while (off < b.size()) {
            const auto src = get_u32(b, off);
            const auto dst = static_cast<int>(get_u32(b, off + 4));
            const std::size_t len = get_u64(b, off + 8);
            if (dst == rank()) {
                in[static_cast<std::size_t>(src)] = b.slice(off + 16, len);
            } else {
                auto& d = down[static_cast<std::size_t>(index_of(cr, dst))];
                put_u32(d, src);
                put_u64(d, len);
                put_msg(d, b.slice(off + 16, len));
            }
            off += 16 + len;
        }
    }
    // Phase 4 (tag+3): per-member download bundles.
    for (std::size_t i = 0; i < cr.size(); ++i) {
        if (cr[i] == rank()) continue;
        send_bytes(down[i].data(), down[i].size(), cr[i], tag + 3);
    }
    return in;
}

// ---------------------------------------------------------------------------
// Communicator management

Comm Comm::dup() {
    Comm c(runtime(), agree_name("d"), circuit_->members(), costs_);
    c.coll_mode_ = coll_mode_;
    return c;
}

Comm Comm::split(int color, int key) {
    struct Entry {
        std::int32_t color;
        std::int32_t key;
        std::int32_t old_rank;
        std::uint32_t pid;
    };
    const Entry mine{color, key, rank(),
                     runtime().process().id()};
    std::vector<Entry> all(static_cast<std::size_t>(size()));
    allgather(std::span<const Entry>(&mine, 1), std::span<Entry>(all));

    const int derived = next_derived_++;
    if (color < 0) return Comm(); // MPI_COMM_NULL analogue

    std::vector<Entry> group;
    for (const auto& e : all)
        if (e.color == color) group.push_back(e);
    std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
        return std::tie(a.key, a.old_rank) < std::tie(b.key, b.old_rank);
    });
    std::vector<fabric::ProcessId> members;
    for (const auto& e : group) members.push_back(e.pid);

    const std::string name = util::strfmt("%s/s%d/c%d",
                                          circuit_->name().c_str(), derived,
                                          color);
    Comm c(runtime(), name, std::move(members), costs_);
    c.coll_mode_ = coll_mode_;
    return c;
}

std::string Comm::agree_name(const std::string& kind) {
    // All members call communicator-derivation operations in the same order
    // (SPMD discipline), so a locally computed name agrees grid-wide.
    return util::strfmt("%s/%s%d", circuit_->name().c_str(), kind.c_str(),
                        next_derived_++);
}

// ---------------------------------------------------------------------------
// World / module

std::shared_ptr<World> World::create(ptm::Runtime& rt, const std::string& job,
                                     std::vector<fabric::ProcessId> members,
                                     MpiCosts costs) {
    auto w = std::shared_ptr<World>(new World());
    w->world_ = Comm(rt, "mpi/" + job, std::move(members), costs);
    return w;
}

std::shared_ptr<World> MpiModule::init(
    const std::string& job, std::vector<fabric::ProcessId> members) {
    if (!world_) world_ = World::create(*rt_, job, std::move(members));
    return world_;
}

void install() {
    if (!ptm::ModuleManager::has_type("mpi"))
        ptm::ModuleManager::register_type("mpi", [](ptm::Runtime& rt) {
            return std::make_shared<MpiModule>(rt);
        });
}

} // namespace padico::mpi
