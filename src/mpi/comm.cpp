#include "mpi/mpi.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace padico::mpi {

namespace detail {

int coll_tag(std::uint64_t& seq) {
    // Collectives get tags above the user range, cycling through a window
    // wide enough that in-flight collectives can never alias.
    return kMaxUserTag + 1 +
           static_cast<int>(seq++ % (1u << 10)) * 4;
}

} // namespace detail

// ---------------------------------------------------------------------------
// Comm

Comm::Comm(ptm::Runtime& rt, const std::string& name,
           std::vector<fabric::ProcessId> members, MpiCosts costs)
    : circuit_(std::make_shared<ptm::Circuit>(rt, name, std::move(members))),
      costs_(costs), coll_seq_(std::make_shared<std::uint64_t>(0)) {}

void Comm::send_msg(util::Message msg, int dst, int tag) {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    PADICO_CHECK(tag >= 0, "user tags are non-negative");
    runtime().process().clock().advance(costs_.per_msg);
    circuit_->send(dst, tag, std::move(msg));
}

util::Message Comm::recv_msg(int src, int tag, Status* status) {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    int got_src = kAnySource, got_tag = kAnyTag;
    util::Message m = circuit_->recv(src, tag, &got_src, &got_tag);
    runtime().process().clock().advance(costs_.per_msg);
    if (status != nullptr)
        *status = Status{got_src, got_tag, m.size()};
    return m;
}

std::optional<util::Message> Comm::try_recv_msg(int src, int tag,
                                                Status* status) {
    PADICO_CHECK(valid(), "operation on an invalid communicator");
    int got_src = kAnySource, got_tag = kAnyTag;
    auto m = circuit_->try_recv(src, tag, &got_src, &got_tag);
    if (!m.has_value()) return std::nullopt;
    runtime().process().clock().advance(costs_.per_msg);
    if (status != nullptr)
        *status = Status{got_src, got_tag, m->size()};
    return m;
}

void Comm::send_bytes(const void* data, std::size_t n, int dst, int tag) {
    send_msg(util::to_message(util::ByteBuf(data, n)), dst, tag);
}

Status Comm::recv_bytes(void* data, std::size_t n, int src, int tag) {
    Status st;
    util::Message m = recv_msg(src, tag, &st);
    PADICO_CHECK(m.size() <= n,
                 util::strfmt("message of %zu bytes truncates %zu-byte buffer",
                              m.size(), n));
    m.copy_out(0, data, m.size());
    return st;
}

// ---------------------------------------------------------------------------
// Nonblocking

struct Request::Impl {
    // Completed operations only carry a status.
    bool done = false;
    Status status;
    // Pending receive.
    Comm* comm = nullptr;
    void* data = nullptr;
    std::size_t cap = 0;
    int src = kAnySource;
    int tag = kAnyTag;
};

Request Comm::isend(util::Message msg, int dst, int tag) {
    // Sends are buffered by the fabric: they complete immediately, as an
    // eager-protocol MPI send does.
    const std::size_t n = msg.size();
    send_msg(std::move(msg), dst, tag);
    Request r;
    r.impl_ = std::make_shared<Request::Impl>();
    r.impl_->done = true;
    r.impl_->status = Status{rank(), tag, n};
    return r;
}

Request Comm::isend_bytes(const void* data, std::size_t n, int dst, int tag) {
    return isend(util::to_message(util::ByteBuf(data, n)), dst, tag);
}

Request Comm::irecv_bytes(void* data, std::size_t n, int src, int tag) {
    Request r;
    r.impl_ = std::make_shared<Request::Impl>();
    r.impl_->comm = this;
    r.impl_->data = data;
    r.impl_->cap = n;
    r.impl_->src = src;
    r.impl_->tag = tag;
    return r;
}

Status Request::wait() {
    PADICO_CHECK(impl_ != nullptr, "wait on null request");
    if (!impl_->done) {
        impl_->status =
            impl_->comm->recv_bytes(impl_->data, impl_->cap, impl_->src,
                                    impl_->tag);
        impl_->done = true;
    }
    return impl_->status;
}

bool Request::test() {
    PADICO_CHECK(impl_ != nullptr, "test on null request");
    if (impl_->done) return true;
    Status st;
    auto m = impl_->comm->try_recv_msg(impl_->src, impl_->tag, &st);
    if (!m.has_value()) return false;
    PADICO_CHECK(m->size() <= impl_->cap, "message truncates irecv buffer");
    m->copy_out(0, impl_->data, m->size());
    impl_->status = st;
    impl_->done = true;
    return true;
}

void wait_all(std::span<Request> reqs) {
    for (auto& r : reqs) r.wait();
}

// ---------------------------------------------------------------------------
// Collectives (byte level)

void Comm::barrier() {
    // Dissemination barrier: ceil(log2 n) rounds.
    const int tag = detail::coll_tag(*coll_seq_);
    const int n = size();
    for (int k = 1; k < n; k <<= 1) {
        const int to = (rank() + k) % n;
        const int from = (rank() - k + n) % n;
        send_msg(util::to_message(util::ByteBuf("b", 1)), to, tag);
        recv_msg(from, tag);
    }
}

void Comm::bcast_bytes(void* data, std::size_t n, int root) {
    PADICO_CHECK(root >= 0 && root < size(), "bad root");
    const int tag = detail::coll_tag(*coll_seq_);
    const int sz = size();
    const int me = (rank() - root + sz) % sz;
    // Binomial tree rooted at 0 (relative ranks).
    int mask = 1;
    while (mask < sz) {
        if (me & mask) {
            const int parent = ((me & ~mask) + root) % sz;
            recv_bytes(data, n, parent, tag);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        const int child = me | mask;
        if (child < sz && !(me & mask))
            send_bytes(data, n, (child + root) % sz, tag);
        mask >>= 1;
    }
}

std::vector<util::Message> Comm::alltoallv_msg(
    std::vector<util::Message> out) {
    PADICO_CHECK(out.size() == static_cast<std::size_t>(size()),
                 "alltoallv needs one message per rank");
    const int tag = detail::coll_tag(*coll_seq_);
    std::vector<util::Message> in(out.size());
    // Sends are buffered: issue them all, then drain receives.
    for (int r = 0; r < size(); ++r) {
        if (r == rank())
            in[static_cast<std::size_t>(r)] =
                std::move(out[static_cast<std::size_t>(r)]);
        else
            send_msg(std::move(out[static_cast<std::size_t>(r)]), r, tag);
    }
    for (int r = 0; r < size(); ++r) {
        if (r == rank()) continue;
        in[static_cast<std::size_t>(r)] = recv_msg(r, tag);
    }
    return in;
}

// ---------------------------------------------------------------------------
// Communicator management

Comm Comm::dup() {
    return Comm(runtime(), agree_name("d"), circuit_->members(), costs_);
}

Comm Comm::split(int color, int key) {
    struct Entry {
        std::int32_t color;
        std::int32_t key;
        std::int32_t old_rank;
        std::uint32_t pid;
    };
    const Entry mine{color, key, rank(),
                     runtime().process().id()};
    std::vector<Entry> all(static_cast<std::size_t>(size()));
    allgather(std::span<const Entry>(&mine, 1), std::span<Entry>(all));

    const int derived = next_derived_++;
    if (color < 0) return Comm(); // MPI_COMM_NULL analogue

    std::vector<Entry> group;
    for (const auto& e : all)
        if (e.color == color) group.push_back(e);
    std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
        return std::tie(a.key, a.old_rank) < std::tie(b.key, b.old_rank);
    });
    std::vector<fabric::ProcessId> members;
    for (const auto& e : group) members.push_back(e.pid);

    const std::string name = util::strfmt("%s/s%d/c%d",
                                          circuit_->name().c_str(), derived,
                                          color);
    return Comm(runtime(), name, std::move(members), costs_);
}

std::string Comm::agree_name(const std::string& kind) {
    // All members call communicator-derivation operations in the same order
    // (SPMD discipline), so a locally computed name agrees grid-wide.
    return util::strfmt("%s/%s%d", circuit_->name().c_str(), kind.c_str(),
                        next_derived_++);
}

// ---------------------------------------------------------------------------
// World / module

std::shared_ptr<World> World::create(ptm::Runtime& rt, const std::string& job,
                                     std::vector<fabric::ProcessId> members,
                                     MpiCosts costs) {
    auto w = std::shared_ptr<World>(new World());
    w->world_ = Comm(rt, "mpi/" + job, std::move(members), costs);
    return w;
}

std::shared_ptr<World> MpiModule::init(
    const std::string& job, std::vector<fabric::ProcessId> members) {
    if (!world_) world_ = World::create(*rt_, job, std::move(members));
    return world_;
}

void install() {
    if (!ptm::ModuleManager::has_type("mpi"))
        ptm::ModuleManager::register_type("mpi", [](ptm::Runtime& rt) {
            return std::make_shared<MpiModule>(rt);
        });
}

} // namespace padico::mpi
