#pragma once
/// \file mpi.hpp
/// PadMPI: an MPI-1 style message passing library implemented on PadicoTM's
/// Circuit abstract interface — the analogue of the MPICH/Madeleine port
/// the paper runs on PadicoTM (§4.3.4). Point-to-point with tag/source
/// matching and wildcards, nonblocking requests, communicator duplication
/// and splitting, and collectives whose timing emerges from the modeled p2p
/// costs.  Collectives are topology-aware in the MPICH-G2 style: on grids
/// with a fabric::Topology they run as multilevel algorithms (cluster-local
/// phase, leaders-only WAN phase, cluster-local dissemination) selected by
/// a cost model over the zone link parameters; on flat grids they keep the
/// legacy flat trees bit-identically (see TopoMap and CollMode).
///
/// The library is a loadable PadicoTM module ("mpi"); it can also be
/// instantiated directly with World::create.

#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mpi/topomap.hpp"
#include "padicotm/circuit.hpp"
#include "padicotm/module.hpp"
#include "padicotm/runtime.hpp"

namespace padico::mpi {

inline constexpr int kAnySource = ptm::kAnyRank;
inline constexpr int kAnyTag = ptm::kAnyTag;

/// Largest user tag; higher values are reserved for collectives.
inline constexpr int kMaxUserTag = (1 << 20) - 1;

/// Reduction operators.
enum class Op { Sum, Prod, Min, Max };

/// Collective algorithm selection for one communicator.  kAuto engages the
/// topology-aware multilevel algorithms whenever the communicator spans
/// more than one cluster of the grid's fabric::Topology; kFlat forces the
/// legacy flat trees (the A/B baseline -- bit-identical in virtual time to
/// the pre-topology behavior); kHier forces the multilevel paths wherever
/// they are legal.  The PADICO_MPI_COLL environment variable ("flat" or
/// "hier") overrides the initial mode of newly created communicators.
enum class CollMode { kAuto, kFlat, kHier };

struct Status {
    int source = kAnySource;
    int tag = kAnyTag;
    std::size_t bytes = 0;
};

/// Software cost of the MPI layer itself, per message per side. Together
/// with Madeleine and Myrinet-2000 this lands on the paper's 11 us MPI
/// latency.
struct MpiCosts {
    SimTime per_msg = usec(0.9);
};

class World;
class Request;

/// An MPI communicator: a rank space with its own matching context
/// (implemented as a dedicated Circuit).
class Comm {
public:
    int rank() const noexcept { return circuit_->rank(); }
    int size() const noexcept { return circuit_->size(); }
    ptm::Runtime& runtime() noexcept { return circuit_->runtime(); }
    const std::string& name() const noexcept { return circuit_->name(); }

    // --- point to point (byte level) -------------------------------------
    void send_msg(util::Message msg, int dst, int tag);
    util::Message recv_msg(int src, int tag, Status* status = nullptr);
    std::optional<util::Message> try_recv_msg(int src, int tag,
                                              Status* status = nullptr);

    void send_bytes(const void* data, std::size_t n, int dst, int tag);
    /// Receives into \p data (capacity \p n); the matched message must fit.
    Status recv_bytes(void* data, std::size_t n, int src, int tag);

    // --- point to point (typed) -----------------------------------------
    template <typename T>
    void send(std::span<const T> data, int dst, int tag) {
        send_bytes(data.data(), data.size_bytes(), dst, tag);
    }
    template <typename T> void send_value(const T& v, int dst, int tag) {
        send_bytes(&v, sizeof v, dst, tag);
    }
    template <typename T> Status recv(std::span<T> data, int src, int tag) {
        return recv_bytes(data.data(), data.size_bytes(), src, tag);
    }
    template <typename T> T recv_value(int src, int tag) {
        T v{};
        recv_bytes(&v, sizeof v, src, tag);
        return v;
    }

    // --- nonblocking -------------------------------------------------------
    Request isend(util::Message msg, int dst, int tag);
    Request isend_bytes(const void* data, std::size_t n, int dst, int tag);
    Request irecv_bytes(void* data, std::size_t n, int src, int tag);

    // --- collectives ------------------------------------------------------
    void barrier();
    void bcast_bytes(void* data, std::size_t n, int root);
    template <typename T> void bcast(std::span<T> data, int root) {
        bcast_bytes(data.data(), data.size_bytes(), root);
    }

    template <typename T>
    void reduce(std::span<const T> in, std::span<T> out, Op op, int root);
    template <typename T>
    void allreduce(std::span<const T> in, std::span<T> out, Op op);

    /// Root gathers size() blocks of \p in.size() elements each.
    template <typename T>
    void gather(std::span<const T> in, std::span<T> out, int root);
    template <typename T>
    void scatter(std::span<const T> in, std::span<T> out, int root);
    template <typename T>
    void allgather(std::span<const T> in, std::span<T> out);
    template <typename T>
    void alltoall(std::span<const T> in, std::span<T> out);

    /// Message-level all-to-all with per-destination payloads of arbitrary
    /// size (the redistribution workhorse of GridCCM). out[r] is sent to
    /// rank r; the result holds what rank r sent to us. Entries to self move
    /// without communication.
    std::vector<util::Message> alltoallv_msg(std::vector<util::Message> out);

    // --- collectives (byte level) -----------------------------------------
    /// Type-erased element-wise combiner: folds \p count elements of
    /// \p other into \p acc under \p op (detail::combine_elems<T>
    /// instantiates one for a trivially copyable T).
    using Combiner = void (*)(Op op, void* acc, const void* other,
                              std::size_t count);

    // The typed templates below are thin wrappers over these entry points;
    // benches and GridCCM drive them directly.  \p out may alias \p in
    // exactly (in-place operation) but never partially -- see
    // detail::check_overlap.  Non-root ranks may pass nullptr for the
    // buffer they do not contribute (out for reduce/gather, in for
    // scatter).
    void reduce_bytes(const void* in, void* out, std::size_t elem,
                      std::size_t count, Combiner comb, Op op, int root);
    void allreduce_bytes(const void* in, void* out, std::size_t elem,
                         std::size_t count, Combiner comb, Op op);
    void gather_bytes(const void* in, void* out, std::size_t block, int root);
    void scatter_bytes(const void* in, void* out, std::size_t block, int root);
    void allgather_bytes(const void* in, void* out, std::size_t block);

    // --- topology ---------------------------------------------------------
    /// The communicator's cluster map (single-cluster on topology-free
    /// grids).  Only meaningful on a valid communicator.
    const TopoMap& topo() const noexcept { return *topo_; }
    /// A/B switch between flat and hierarchical collective algorithms.
    void set_coll_mode(CollMode m) noexcept { coll_mode_ = m; }
    CollMode coll_mode() const noexcept { return coll_mode_; }

    // --- communicator management -------------------------------------------
    /// Collective: a new communicator with the same group.
    Comm dup();
    /// Collective: partition by color; ranks ordered by (key, old rank).
    /// A negative color yields an invalid Comm (like MPI_COMM_NULL).
    Comm split(int color, int key);

    bool valid() const noexcept { return circuit_ != nullptr; }

private:
    friend class World;
    Comm() = default;
    Comm(ptm::Runtime& rt, const std::string& name,
         std::vector<fabric::ProcessId> members, MpiCosts costs);

    /// Collective agreement on a grid-unique name for a derived circuit.
    std::string agree_name(const std::string& kind);

    /// True when the multilevel algorithms apply: the mode allows them and
    /// the communicator spans more than one topology cluster.
    bool hier_active() const noexcept {
        return coll_mode_ != CollMode::kFlat && topo_->hierarchical();
    }

    std::shared_ptr<ptm::Circuit> circuit_;
    MpiCosts costs_;
    std::shared_ptr<std::uint64_t> coll_seq_; ///< per-comm collective counter
    std::shared_ptr<const TopoMap> topo_;     ///< cluster map (built eagerly)
    CollMode coll_mode_ = CollMode::kAuto;
    int next_derived_ = 0;
};

/// A nonblocking operation handle.
class Request {
public:
    Request() = default;

    /// Block until the operation completes.
    Status wait();
    /// Poll; true when complete (status available via wait()).
    bool test();

private:
    friend class Comm;
    struct Impl;
    std::shared_ptr<Impl> impl_;
};

/// Wait for all requests (MPI_Waitall).
void wait_all(std::span<Request> reqs);

/// The MPI instance of one process: owns MPI_COMM_WORLD.
class World {
public:
    /// Collective across \p members (every member calls with the same
    /// arguments). \p job names the instance grid-wide.
    static std::shared_ptr<World> create(ptm::Runtime& rt,
                                         const std::string& job,
                                         std::vector<fabric::ProcessId> members,
                                         MpiCosts costs = {});

    Comm& world() noexcept { return world_; }

private:
    World() = default;
    Comm world_;
};

/// The loadable PadicoTM module wrapper.
class MpiModule : public ptm::Module {
public:
    explicit MpiModule(ptm::Runtime& rt) : rt_(&rt) {}
    std::string name() const override { return "mpi"; }

    /// First call creates the world; later calls return it.
    std::shared_ptr<World> init(const std::string& job,
                                std::vector<fabric::ProcessId> members);
    std::shared_ptr<World> world() const { return world_; }

private:
    ptm::Runtime* rt_;
    std::shared_ptr<World> world_;
};

/// Register the "mpi" module type with the PadicoTM module registry.
void install();

// ===========================================================================
// templates

namespace detail {

template <typename T> T combine(Op op, T a, T b) {
    switch (op) {
    case Op::Sum: return a + b;
    case Op::Prod: return a * b;
    case Op::Min: return a < b ? a : b;
    case Op::Max: return a > b ? a : b;
    }
    throw UsageError("bad reduction op");
}

/// Element-wise fold of \p other into \p acc -- the Combiner instantiation
/// for a trivially copyable T.
template <typename T>
void combine_elems(Op op, void* acc, const void* other, std::size_t count) {
    T* a = static_cast<T*>(acc);
    const T* b = static_cast<const T*>(other);
    for (std::size_t i = 0; i < count; ++i) a[i] = combine(op, a[i], b[i]);
}

/// Collective buffer aliasing rule: input and output must either be
/// disjoint or alias exactly (same pointer, same length, for in-place
/// operation); partial overlap throws UsageError.
void check_overlap(const void* in, std::size_t in_bytes, const void* out,
                   std::size_t out_bytes);

/// Tags used by collective phases; sequenced per communicator so that
/// back-to-back collectives never cross-match.
int coll_tag(std::uint64_t& seq);

} // namespace detail

template <typename T>
void Comm::reduce(std::span<const T> in, std::span<T> out, Op op, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank() == root) {
        PADICO_CHECK(out.size() == in.size(), "reduce size mismatch");
        detail::check_overlap(in.data(), in.size_bytes(), out.data(),
                              out.size_bytes());
    }
    reduce_bytes(in.data(), out.data(), sizeof(T), in.size(),
                 &detail::combine_elems<T>, op, root);
}

template <typename T>
void Comm::allreduce(std::span<const T> in, std::span<T> out, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    PADICO_CHECK(out.size() == in.size(), "allreduce size mismatch");
    detail::check_overlap(in.data(), in.size_bytes(), out.data(),
                          out.size_bytes());
    allreduce_bytes(in.data(), out.data(), sizeof(T), in.size(),
                    &detail::combine_elems<T>, op);
}

template <typename T>
void Comm::gather(std::span<const T> in, std::span<T> out, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank() == root) {
        PADICO_CHECK(out.size() == in.size() * static_cast<std::size_t>(size()),
                     "gather output size mismatch");
        detail::check_overlap(in.data(), in.size_bytes(), out.data(),
                              out.size_bytes());
    }
    gather_bytes(in.data(), out.data(), in.size_bytes(), root);
}

template <typename T>
void Comm::scatter(std::span<const T> in, std::span<T> out, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank() == root) {
        PADICO_CHECK(in.size() == out.size() * static_cast<std::size_t>(size()),
                     "scatter input size mismatch");
        detail::check_overlap(in.data(), in.size_bytes(), out.data(),
                              out.size_bytes());
    }
    scatter_bytes(in.data(), out.data(), out.size_bytes(), root);
}

template <typename T>
void Comm::allgather(std::span<const T> in, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    PADICO_CHECK(out.size() == in.size() * static_cast<std::size_t>(size()),
                 "allgather output size mismatch");
    detail::check_overlap(in.data(), in.size_bytes(), out.data(),
                          out.size_bytes());
    allgather_bytes(in.data(), out.data(), in.size_bytes());
}

template <typename T>
void Comm::alltoall(std::span<const T> in, std::span<T> out) {
    const std::size_t block = in.size() / static_cast<std::size_t>(size());
    PADICO_CHECK(in.size() == out.size() &&
                     in.size() == block * static_cast<std::size_t>(size()),
                 "alltoall size mismatch");
    std::vector<util::Message> parts;
    for (int r = 0; r < size(); ++r) {
        parts.push_back(util::to_message(util::ByteBuf(
            in.data() + static_cast<std::size_t>(r) * block,
            block * sizeof(T))));
    }
    auto got = alltoallv_msg(std::move(parts));
    for (int r = 0; r < size(); ++r)
        got[static_cast<std::size_t>(r)].copy_out(
            0, out.data() + static_cast<std::size_t>(r) * block,
            block * sizeof(T));
}

} // namespace padico::mpi
