#pragma once
/// \file mpi.hpp
/// PadMPI: an MPI-1 style message passing library implemented on PadicoTM's
/// Circuit abstract interface — the analogue of the MPICH/Madeleine port
/// the paper runs on PadicoTM (§4.3.4). Point-to-point with tag/source
/// matching and wildcards, nonblocking requests, communicator duplication
/// and splitting, and tree-based collectives whose timing emerges from the
/// modeled p2p costs.
///
/// The library is a loadable PadicoTM module ("mpi"); it can also be
/// instantiated directly with World::create.

#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "padicotm/circuit.hpp"
#include "padicotm/module.hpp"
#include "padicotm/runtime.hpp"

namespace padico::mpi {

inline constexpr int kAnySource = ptm::kAnyRank;
inline constexpr int kAnyTag = ptm::kAnyTag;

/// Largest user tag; higher values are reserved for collectives.
inline constexpr int kMaxUserTag = (1 << 20) - 1;

/// Reduction operators.
enum class Op { Sum, Prod, Min, Max };

struct Status {
    int source = kAnySource;
    int tag = kAnyTag;
    std::size_t bytes = 0;
};

/// Software cost of the MPI layer itself, per message per side. Together
/// with Madeleine and Myrinet-2000 this lands on the paper's 11 us MPI
/// latency.
struct MpiCosts {
    SimTime per_msg = usec(0.9);
};

class World;
class Request;

/// An MPI communicator: a rank space with its own matching context
/// (implemented as a dedicated Circuit).
class Comm {
public:
    int rank() const noexcept { return circuit_->rank(); }
    int size() const noexcept { return circuit_->size(); }
    ptm::Runtime& runtime() noexcept { return circuit_->runtime(); }
    const std::string& name() const noexcept { return circuit_->name(); }

    // --- point to point (byte level) -------------------------------------
    void send_msg(util::Message msg, int dst, int tag);
    util::Message recv_msg(int src, int tag, Status* status = nullptr);
    std::optional<util::Message> try_recv_msg(int src, int tag,
                                              Status* status = nullptr);

    void send_bytes(const void* data, std::size_t n, int dst, int tag);
    /// Receives into \p data (capacity \p n); the matched message must fit.
    Status recv_bytes(void* data, std::size_t n, int src, int tag);

    // --- point to point (typed) -----------------------------------------
    template <typename T>
    void send(std::span<const T> data, int dst, int tag) {
        send_bytes(data.data(), data.size_bytes(), dst, tag);
    }
    template <typename T> void send_value(const T& v, int dst, int tag) {
        send_bytes(&v, sizeof v, dst, tag);
    }
    template <typename T> Status recv(std::span<T> data, int src, int tag) {
        return recv_bytes(data.data(), data.size_bytes(), src, tag);
    }
    template <typename T> T recv_value(int src, int tag) {
        T v{};
        recv_bytes(&v, sizeof v, src, tag);
        return v;
    }

    // --- nonblocking -------------------------------------------------------
    Request isend(util::Message msg, int dst, int tag);
    Request isend_bytes(const void* data, std::size_t n, int dst, int tag);
    Request irecv_bytes(void* data, std::size_t n, int src, int tag);

    // --- collectives ------------------------------------------------------
    void barrier();
    void bcast_bytes(void* data, std::size_t n, int root);
    template <typename T> void bcast(std::span<T> data, int root) {
        bcast_bytes(data.data(), data.size_bytes(), root);
    }

    template <typename T>
    void reduce(std::span<const T> in, std::span<T> out, Op op, int root);
    template <typename T>
    void allreduce(std::span<const T> in, std::span<T> out, Op op);

    /// Root gathers size() blocks of \p in.size() elements each.
    template <typename T>
    void gather(std::span<const T> in, std::span<T> out, int root);
    template <typename T>
    void scatter(std::span<const T> in, std::span<T> out, int root);
    template <typename T>
    void allgather(std::span<const T> in, std::span<T> out);
    template <typename T>
    void alltoall(std::span<const T> in, std::span<T> out);

    /// Message-level all-to-all with per-destination payloads of arbitrary
    /// size (the redistribution workhorse of GridCCM). out[r] is sent to
    /// rank r; the result holds what rank r sent to us. Entries to self move
    /// without communication.
    std::vector<util::Message> alltoallv_msg(std::vector<util::Message> out);

    // --- communicator management -------------------------------------------
    /// Collective: a new communicator with the same group.
    Comm dup();
    /// Collective: partition by color; ranks ordered by (key, old rank).
    /// A negative color yields an invalid Comm (like MPI_COMM_NULL).
    Comm split(int color, int key);

    bool valid() const noexcept { return circuit_ != nullptr; }

private:
    friend class World;
    Comm() = default;
    Comm(ptm::Runtime& rt, const std::string& name,
         std::vector<fabric::ProcessId> members, MpiCosts costs);

    /// Collective agreement on a grid-unique name for a derived circuit.
    std::string agree_name(const std::string& kind);

    std::shared_ptr<ptm::Circuit> circuit_;
    MpiCosts costs_;
    std::shared_ptr<std::uint64_t> coll_seq_; ///< per-comm collective counter
    int next_derived_ = 0;
};

/// A nonblocking operation handle.
class Request {
public:
    Request() = default;

    /// Block until the operation completes.
    Status wait();
    /// Poll; true when complete (status available via wait()).
    bool test();

private:
    friend class Comm;
    struct Impl;
    std::shared_ptr<Impl> impl_;
};

/// Wait for all requests (MPI_Waitall).
void wait_all(std::span<Request> reqs);

/// The MPI instance of one process: owns MPI_COMM_WORLD.
class World {
public:
    /// Collective across \p members (every member calls with the same
    /// arguments). \p job names the instance grid-wide.
    static std::shared_ptr<World> create(ptm::Runtime& rt,
                                         const std::string& job,
                                         std::vector<fabric::ProcessId> members,
                                         MpiCosts costs = {});

    Comm& world() noexcept { return world_; }

private:
    World() = default;
    Comm world_;
};

/// The loadable PadicoTM module wrapper.
class MpiModule : public ptm::Module {
public:
    explicit MpiModule(ptm::Runtime& rt) : rt_(&rt) {}
    std::string name() const override { return "mpi"; }

    /// First call creates the world; later calls return it.
    std::shared_ptr<World> init(const std::string& job,
                                std::vector<fabric::ProcessId> members);
    std::shared_ptr<World> world() const { return world_; }

private:
    ptm::Runtime* rt_;
    std::shared_ptr<World> world_;
};

/// Register the "mpi" module type with the PadicoTM module registry.
void install();

// ===========================================================================
// templates

namespace detail {

template <typename T> T combine(Op op, T a, T b) {
    switch (op) {
    case Op::Sum: return a + b;
    case Op::Prod: return a * b;
    case Op::Min: return a < b ? a : b;
    case Op::Max: return a > b ? a : b;
    }
    throw UsageError("bad reduction op");
}

/// Tags used by collective phases; sequenced per communicator so that
/// back-to-back collectives never cross-match.
int coll_tag(std::uint64_t& seq);

} // namespace detail

template <typename T>
void Comm::reduce(std::span<const T> in, std::span<T> out, Op op, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    PADICO_CHECK(root >= 0 && root < size(), "bad root");
    const int tag = detail::coll_tag(*coll_seq_);
    const int n = size();
    const int me = (rank() - root + n) % n; // relative rank, root -> 0
    std::vector<T> acc(in.begin(), in.end());
    // Binomial tree: children push partial results toward the root.
    for (int mask = 1; mask < n; mask <<= 1) {
        if (me & mask) {
            const int parent = ((me & ~mask) + root) % n;
            send(std::span<const T>(acc), parent, tag);
            break;
        }
        const int child = me | mask;
        if (child < n) {
            std::vector<T> part(in.size());
            recv(std::span<T>(part), (child + root) % n, tag);
            for (std::size_t i = 0; i < acc.size(); ++i)
                acc[i] = detail::combine(op, acc[i], part[i]);
        }
    }
    if (rank() == root) {
        PADICO_CHECK(out.size() == in.size(), "reduce size mismatch");
        std::memcpy(out.data(), acc.data(), acc.size() * sizeof(T));
    }
}

template <typename T>
void Comm::allreduce(std::span<const T> in, std::span<T> out, Op op) {
    PADICO_CHECK(out.size() == in.size(), "allreduce size mismatch");
    reduce(in, out, op, 0);
    bcast(out, 0);
}

template <typename T>
void Comm::gather(std::span<const T> in, std::span<T> out, int root) {
    const int tag = detail::coll_tag(*coll_seq_);
    if (rank() == root) {
        PADICO_CHECK(out.size() == in.size() * static_cast<std::size_t>(size()),
                     "gather output size mismatch");
        for (int r = 0; r < size(); ++r) {
            auto slot = out.subspan(static_cast<std::size_t>(r) * in.size(),
                                    in.size());
            if (r == rank())
                std::memcpy(slot.data(), in.data(), in.size_bytes());
            else
                recv(slot, r, tag);
        }
    } else {
        send(in, root, tag);
    }
}

template <typename T>
void Comm::scatter(std::span<const T> in, std::span<T> out, int root) {
    const int tag = detail::coll_tag(*coll_seq_);
    if (rank() == root) {
        PADICO_CHECK(in.size() == out.size() * static_cast<std::size_t>(size()),
                     "scatter input size mismatch");
        for (int r = 0; r < size(); ++r) {
            auto slot = in.subspan(static_cast<std::size_t>(r) * out.size(),
                                   out.size());
            if (r == rank())
                std::memcpy(out.data(), slot.data(), out.size_bytes());
            else
                send(slot, r, tag);
        }
    } else {
        recv(out, root, tag);
    }
}

template <typename T>
void Comm::allgather(std::span<const T> in, std::span<T> out) {
    PADICO_CHECK(out.size() == in.size() * static_cast<std::size_t>(size()),
                 "allgather output size mismatch");
    gather(in, out, 0);
    bcast(out, 0);
}

template <typename T>
void Comm::alltoall(std::span<const T> in, std::span<T> out) {
    const std::size_t block = in.size() / static_cast<std::size_t>(size());
    PADICO_CHECK(in.size() == out.size() &&
                     in.size() == block * static_cast<std::size_t>(size()),
                 "alltoall size mismatch");
    std::vector<util::Message> parts;
    for (int r = 0; r < size(); ++r) {
        parts.push_back(util::to_message(util::ByteBuf(
            in.data() + static_cast<std::size_t>(r) * block,
            block * sizeof(T))));
    }
    auto got = alltoallv_msg(std::move(parts));
    for (int r = 0; r < size(); ++r)
        got[static_cast<std::size_t>(r)].copy_out(
            0, out.data() + static_cast<std::size_t>(r) * block,
            block * sizeof(T));
}

} // namespace padico::mpi
