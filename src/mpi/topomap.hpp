#pragma once
/// \file topomap.hpp
/// \brief mpi::TopoMap -- per-communicator cluster map derived from the
///        grid's fabric::Topology zone tree.
///
/// A TopoMap answers, for one communicator, the questions the multilevel
/// collectives need (DESIGN.md section 15):
///
///   - which cluster (leaf zone) does each rank live in,
///   - which rank is the cluster's leader (the minimum rank in the cluster,
///     so leaders are stable and cheap to compute on every member),
///   - how far apart are two clusters in the zone tree (hop distance through
///     the lowest common ancestor),
///   - what do the intra-cluster and inter-cluster links cost (bandwidth,
///     latency, rendezvous threshold), so algorithm selection can be fed
///     from the same netmodel parameters the runtime charges.
///
/// The map is built locally with no communication: the Circuit constructor's
/// rendezvous guarantees every member process exists, so pid -> machine ->
/// zone lookups resolve immediately and every member derives the identical
/// map.  Grids without a Topology (or wrapped in a FlatZone) collapse to a
/// single cluster, which disables the hierarchical paths entirely.

#include <cstddef>
#include <memory>
#include <vector>

#include "padicotm/runtime.hpp"

namespace padico::mpi {

/// Cluster structure of one communicator.  Immutable after build(); shared
/// by value-copied Comm handles via shared_ptr.
class TopoMap {
public:
    /// Cost-model view of one link class (intra-cluster LAN or inter-cluster
    /// WAN), folded from the segment's LinkParams and WireCosts plus the MPI
    /// layer's own per-message overhead.  Used only for algorithm selection,
    /// never for charging time -- the runtime still charges the real costs.
    struct Link {
        double mb = 100.0;           ///< attainable bandwidth, MB/s
        SimTime latency = 0;         ///< one-way wire latency
        std::size_t rendezvous = 0;  ///< rendezvous threshold in bytes, 0 = eager only
        SimTime rendezvous_cost = 0; ///< extra round-trip cost past the threshold
        SimTime per_msg = 0;         ///< software per-message overhead (both ends)

        /// Modeled one-way completion time of a `bytes`-sized message,
        /// including the rendezvous penalty where it applies.
        SimTime msg_time(std::size_t bytes) const noexcept {
            SimTime t = per_msg + latency + transfer_time(bytes, mb);
            if (rendezvous != 0 && bytes > rendezvous) t += rendezvous_cost;
            return t;
        }
        /// Modeled cost of the non-latency part (overhead + wire occupancy);
        /// the right unit for back-to-back sends from one sender.
        SimTime occupancy(std::size_t bytes) const noexcept {
            return msg_time(bytes) - latency;
        }
    };

    /// Derive the map for `members` (rank -> pid) on `rt`'s grid.
    /// `mpi_per_msg` is the MPI layer's per-message CPU cost (MpiCosts),
    /// folded into the Link estimates.  Never fails: topology-free grids
    /// yield a single-cluster map.
    static std::shared_ptr<const TopoMap> build(ptm::Runtime& rt,
                                                const std::vector<fabric::ProcessId>& members,
                                                SimTime mpi_per_msg);

    int size() const noexcept { return static_cast<int>(cluster_of_.size()); }
    int clusters() const noexcept { return static_cast<int>(cluster_ranks_.size()); }
    /// True when the communicator spans more than one cluster; the gate for
    /// all multilevel algorithms.
    bool hierarchical() const noexcept { return clusters() > 1; }
    /// True when the map was derived from a real (non-flat) topology.  A
    /// zoned single-cluster comm may still use long-message cluster-local
    /// variants; a flat grid must stay bit-identical to the legacy tree.
    bool zoned() const noexcept { return zoned_; }

    /// Dense cluster index of `rank` (clusters are numbered by first
    /// appearance in rank order, so cluster 0 always contains rank 0).
    int cluster_of(int rank) const { return cluster_of_[static_cast<std::size_t>(rank)]; }
    /// Ranks of cluster `c`, ascending.
    const std::vector<int>& cluster_ranks(int c) const {
        return cluster_ranks_[static_cast<std::size_t>(c)];
    }
    /// Leader (minimum rank) of cluster `c`.
    int leader_of(int c) const { return cluster_ranks_[static_cast<std::size_t>(c)].front(); }
    /// Leaders of all clusters, indexed by cluster.
    const std::vector<int>& leaders() const noexcept { return leaders_; }
    /// True when every cluster occupies a contiguous rank interval -- the
    /// precondition for hierarchical reduction to reproduce the flat
    /// combine order (reduce/allreduce fall back to flat otherwise).
    bool contiguous() const noexcept { return contiguous_; }
    /// Zone-tree hop distance between clusters (via the lowest common
    /// ancestor); 0 on the diagonal.
    int distance(int a, int b) const {
        return dist_[static_cast<std::size_t>(a) * cluster_ranks_.size() +
                     static_cast<std::size_t>(b)];
    }
    /// Link estimate inside cluster `c`.
    const Link& intra(int c) const { return intra_[static_cast<std::size_t>(c)]; }
    /// Link estimate between clusters (the gateway/WAN path).
    const Link& inter() const noexcept { return inter_; }

private:
    std::vector<int> cluster_of_;               ///< rank -> cluster index
    std::vector<std::vector<int>> cluster_ranks_; ///< cluster -> ranks, ascending
    std::vector<int> leaders_;                  ///< cluster -> leader rank
    std::vector<int> dist_;                     ///< clusters x clusters hop matrix
    std::vector<Link> intra_;                   ///< per-cluster LAN estimate
    Link inter_;                                ///< WAN estimate
    bool contiguous_ = true;
    bool zoned_ = false;
};

} // namespace padico::mpi
