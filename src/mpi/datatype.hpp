#pragma once
/// \file datatype.hpp
/// Derived datatypes: strided vector layouts packed to/from contiguous
/// wire buffers (MPI_Type_vector analogue). Used when exchanging columns or
/// sub-blocks of row-major arrays — e.g. the 2D field halos of the code
/// coupling example.

#include <cstring>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace padico::mpi {

/// count blocks of blocklen elements, consecutive blocks stride elements
/// apart (in units of T).
struct VectorType {
    std::size_t count = 0;
    std::size_t blocklen = 0;
    std::size_t stride = 0;

    std::size_t packed_elems() const noexcept { return count * blocklen; }

    /// Smallest source extent (in elements) a pack needs.
    std::size_t extent() const noexcept {
        return count == 0 ? 0 : (count - 1) * stride + blocklen;
    }
};

/// Pack a strided layout from \p src into a contiguous buffer.
template <typename T>
std::vector<T> pack(const VectorType& vt, std::span<const T> src) {
    PADICO_CHECK(src.size() >= vt.extent(), "pack source too small");
    PADICO_CHECK(vt.blocklen <= vt.stride || vt.count <= 1,
                 "overlapping vector type");
    std::vector<T> out;
    out.reserve(vt.packed_elems());
    for (std::size_t b = 0; b < vt.count; ++b) {
        const T* base = src.data() + b * vt.stride;
        out.insert(out.end(), base, base + vt.blocklen);
    }
    return out;
}

/// Unpack a contiguous buffer back into the strided layout in \p dst.
template <typename T>
void unpack(const VectorType& vt, std::span<const T> packed,
            std::span<T> dst) {
    PADICO_CHECK(packed.size() == vt.packed_elems(), "unpack size mismatch");
    PADICO_CHECK(dst.size() >= vt.extent(), "unpack destination too small");
    for (std::size_t b = 0; b < vt.count; ++b) {
        std::memcpy(dst.data() + b * vt.stride,
                    packed.data() + b * vt.blocklen, vt.blocklen * sizeof(T));
    }
}

} // namespace padico::mpi
