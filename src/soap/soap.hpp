#pragma once
/// \file soap.hpp
/// gSOAP substitute (paper §4.3.4: "the SOAP implementation gSOAP has also
/// been seamlessly used on top of PadicoTM"). A minimal XML-envelope RPC on
/// VLink: string-typed parameters, request/response envelopes, a service
/// dispatcher. Deliberately text-based — its role in the reproduction is to
/// show a third, very different middleware sharing the same runtime (and to
/// make Web Services' "performance is poor" point measurable: every call
/// pays XML encode/parse on both sides).

#include <functional>
#include <map>

#include "osal/checked.hpp"
#include "osal/lockrank.hpp"
#include "padicotm/module.hpp"
#include "padicotm/vlink.hpp"
#include "svc/server_core.hpp"
#include "util/xml.hpp"

namespace padico::soap {

/// A SOAP-ish call: operation name + named string parameters.
using Params = std::map<std::string, std::string>;

/// Handler: receives parameters, returns result parameters.
using Handler = std::function<Params(const Params&)>;

/// Modeled per-byte cost of XML parsing/printing (era expat-class parser).
inline constexpr double kXmlNsPerByte = 80.0;

/// Build/parse envelopes (exposed for tests).
std::string make_envelope(const std::string& op, const Params& params);
std::pair<std::string, Params> parse_envelope(const std::string& xml);

/// Server: dispatches operations registered with bind(). Runs on the
/// shared event-driven ServerCore — same dispatcher/pool model as the
/// CORBA ORB, so connection counts never inflate the thread count.
class SoapServer {
public:
    SoapServer(ptm::Runtime& rt, const std::string& endpoint,
               svc::ServerCore::Options opts = {});
    ~SoapServer();
    SoapServer(const SoapServer&) = delete;
    SoapServer& operator=(const SoapServer&) = delete;

    void bind(const std::string& op, Handler handler);
    void shutdown();

    /// Server-core counters (accepted/pruned connections, thread counts).
    svc::ServerCore::Stats server_stats() const { return core_->stats(); }

private:
    class ServerProtocol; ///< length-prefix framing + dispatch (soap.cpp)

    void handle_request(ptm::VLink& conn, util::Message body);

    ptm::Runtime* rt_;
    osal::CheckedMutex mu_{lockrank::kSoapServer, "soap.server"};
    std::map<std::string, Handler> handlers_;
    std::unique_ptr<svc::ServerCore> core_;
};

/// Client: one connection per proxy.
class SoapClient {
public:
    SoapClient(ptm::Runtime& rt, const std::string& endpoint);

    /// Synchronous call; throws RemoteError on a fault envelope.
    Params call(const std::string& op, const Params& params);

private:
    ptm::Runtime* rt_;
    ptm::VLink conn_;
    osal::CheckedMutex mu_{lockrank::kSoapClient, "soap.client"};
};

/// The loadable module wrapper ("gsoap").
class SoapModule : public ptm::Module {
public:
    explicit SoapModule(ptm::Runtime& rt) : rt_(&rt) {}
    std::string name() const override { return "gsoap"; }
    ptm::Runtime& runtime() noexcept { return *rt_; }

private:
    ptm::Runtime* rt_;
};

void install();

} // namespace padico::soap
