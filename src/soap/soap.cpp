#include "soap/soap.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace padico::soap {

namespace {

std::string xml_escape(const std::string& s) {
    std::string out;
    for (char c : s) {
        switch (c) {
        case '&': out += "&amp;"; break;
        case '<': out += "&lt;"; break;
        case '>': out += "&gt;"; break;
        case '"': out += "&quot;"; break;
        default: out += c;
        }
    }
    return out;
}

/// Charge the XML processing cost for a payload of \p bytes.
void charge_xml(ptm::Runtime& rt, std::size_t bytes) {
    rt.process().clock().advance(
        static_cast<SimTime>(static_cast<double>(bytes) * kXmlNsPerByte));
}

/// Length-prefixed text frames on the stream.
void send_text(ptm::Runtime& rt, ptm::VLink& conn, const std::string& text) {
    charge_xml(rt, text.size());
    const std::uint64_t len = text.size();
    util::ByteBuf framed(&len, sizeof len);
    framed.append(text.data(), text.size());
    conn.write(util::to_message(std::move(framed)));
}

std::optional<std::string> recv_text(ptm::Runtime& rt, ptm::VLink& conn) {
    auto lm = conn.read_msg_opt(sizeof(std::uint64_t));
    if (!lm.has_value()) return std::nullopt;
    std::uint64_t len = 0;
    lm->copy_out(0, &len, sizeof len);
    util::Message body = conn.read_msg(len);
    auto flat = body.gather();
    charge_xml(rt, flat.size());
    return std::string(reinterpret_cast<const char*>(flat.data()),
                       flat.size());
}

} // namespace

std::string make_envelope(const std::string& op, const Params& params) {
    std::string xml = "<Envelope><Body><" + op + ">";
    for (const auto& [key, value] : params)
        xml += "<" + key + ">" + xml_escape(value) + "</" + key + ">";
    xml += "</" + op + "></Body></Envelope>";
    return xml;
}

std::pair<std::string, Params> parse_envelope(const std::string& xml) {
    const auto root = util::xml_parse(xml);
    PADICO_WIRE_CHECK(root->name() == "Envelope", "not a SOAP envelope");
    const auto body = root->require_child("Body");
    PADICO_WIRE_CHECK(body->children().size() == 1,
                      "SOAP body must hold one element");
    const auto& opnode = body->children().front();
    Params params;
    for (const auto& p : opnode->children()) params[p->name()] = p->text();
    return {opnode->name(), params};
}

// ---------------------------------------------------------------------------
// Server

/// Per-connection server driver: length-prefixed text frames reassembled
/// on the dispatcher side, envelope dispatch on the worker side.
class SoapServer::ServerProtocol : public svc::Protocol {
public:
    explicit ServerProtocol(SoapServer& server) : server_(&server) {}

    Extract try_extract(ptm::VLink& link, util::Message& frame) override {
        if (!have_len_) {
            auto lm = link.try_read_msg(sizeof(std::uint64_t));
            if (!lm.has_value()) {
                if (!link.at_eof()) return Extract::kNeedMore;
                PADICO_WIRE_CHECK(link.buffered_bytes() == 0,
                                  "stream ended inside SOAP length prefix");
                return Extract::kClosed;
            }
            lm->copy_out(0, &len_, sizeof len_);
            have_len_ = true;
        }
        auto body = link.try_read_msg(len_);
        if (!body.has_value()) {
            PADICO_WIRE_CHECK(!link.at_eof(),
                              "stream ended inside SOAP frame");
            return Extract::kNeedMore;
        }
        have_len_ = false;
        frame = std::move(*body);
        return Extract::kFrame;
    }

    void on_frame(ptm::VLink& link, util::Message frame) override {
        server_->handle_request(link, std::move(frame));
    }

private:
    SoapServer* server_;
    bool have_len_ = false;
    std::uint64_t len_ = 0;
};

SoapServer::SoapServer(ptm::Runtime& rt, const std::string& endpoint,
                       svc::ServerCore::Options opts)
    : rt_(&rt) {
    if (opts.protocol == "svc") opts.protocol = "soap";
    core_ = std::make_unique<svc::ServerCore>(
        rt, endpoint,
        [this]() -> std::unique_ptr<svc::Protocol> {
            return std::make_unique<ServerProtocol>(*this);
        },
        opts);
}

SoapServer::~SoapServer() { shutdown(); }

void SoapServer::bind(const std::string& op, Handler handler) {
    osal::CheckedLock lk(mu_);
    handlers_[op] = std::move(handler);
}

void SoapServer::shutdown() { core_->shutdown(); }

void SoapServer::handle_request(ptm::VLink& conn, util::Message body) {
    auto flat = body.gather();
    charge_xml(*rt_, flat.size());
    const std::string text(reinterpret_cast<const char*>(flat.data()),
                           flat.size());
    std::string reply;
    try {
        auto [op, params] = parse_envelope(text);
        Handler handler;
        {
            osal::CheckedLock lk(mu_);
            auto it = handlers_.find(op);
            if (it != handlers_.end()) handler = it->second;
        }
        if (!handler) {
            reply = make_envelope(
                "Fault", {{"faultstring", "no such operation: " + op}});
        } else {
            reply = make_envelope(op + "Response", handler(params));
        }
    } catch (const Error& e) {
        reply = make_envelope("Fault", {{"faultstring", e.what()}});
    }
    send_text(*rt_, conn, reply);
}

// ---------------------------------------------------------------------------
// Client

SoapClient::SoapClient(ptm::Runtime& rt, const std::string& endpoint)
    : rt_(&rt), conn_(ptm::VLink::connect(rt, endpoint)) {}

Params SoapClient::call(const std::string& op, const Params& params) {
    osal::CheckedLock lk(mu_);
    send_text(*rt_, conn_, make_envelope(op, params));
    auto text = recv_text(*rt_, conn_);
    PADICO_CHECK(text.has_value(), "SOAP connection closed");
    auto [rop, rparams] = parse_envelope(*text);
    if (rop == "Fault")
        throw RemoteError("SOAP fault: " +
                          (rparams.count("faultstring")
                               ? rparams.at("faultstring")
                               : std::string("unknown")));
    PADICO_WIRE_CHECK(rop == op + "Response", "mismatched SOAP response");
    return rparams;
}

void install() {
    if (!ptm::ModuleManager::has_type("gsoap"))
        ptm::ModuleManager::register_type(
            "gsoap", [](ptm::Runtime& rt) -> std::shared_ptr<ptm::Module> {
                return std::make_shared<SoapModule>(rt);
            });
}

} // namespace padico::soap
