#pragma once
/// \file component.hpp
/// ParallelComponent: the GridCCM programming model for component authors
/// (paper §4.2.1, Fig. 3). A parallel component is an SPMD code whose
/// members each run inside a CCM container on their own node; the members
/// share an MPI communicator for intra-component communication and jointly
/// expose *parallel facets* whose operations take distributed sequences.
///
/// The deployer transports the member topology through reserved attributes
/// (gridccm.name/rank/size/members); at configuration_complete time the
/// base class builds the member communicator, runs the user's
/// parallel_initialize() hook, activates one ParallelSkeleton per parallel
/// facet on every member, and publishes the ParallelHome on member 0 as
/// facet "<facet>.parallel" — the proxy that hides the member nodes from
/// other components.

#include "ccm/component.hpp"
#include "gridccm/stub.hpp"

namespace padico::gridccm {

class ParallelComponent : public ccm::Component {
public:
    int member_rank() const noexcept { return rank_; }
    int member_size() const noexcept { return size_; }

    /// The member communicator; null when the component was deployed with
    /// a single member.
    mpi::Comm* member_comm() noexcept {
        return world_ ? &world_->world() : nullptr;
    }

    /// Builds the member world and publishes the parallel facets; calls
    /// parallel_initialize() in between. Subclasses override
    /// parallel_initialize(), not this.
    void configuration_complete() final;

protected:
    /// User hook: the member communicator exists, facets are not yet
    /// published.
    virtual void parallel_initialize() {}

    /// Declare a parallel facet from its XML parallelism description and
    /// the operation implementations. Call from the constructor.
    void declare_parallel_facet(const std::string& xml,
                                std::map<std::string, OpHandler> handlers);

    /// Bind a receptacle (wired by the deployer to a parallel home) as a
    /// collective ParallelStub over the member group.
    std::shared_ptr<ParallelStub> bind_parallel(
        const std::string& receptacle_name,
        Distribution client_dist = Distribution::block());

private:
    struct PFacet {
        ParallelFacetDesc desc;
        std::map<std::string, OpHandler> handlers;
        std::shared_ptr<ParallelSkeleton> skeleton;
    };

    std::vector<PFacet> pfacets_;
    std::shared_ptr<mpi::World> world_;
    int rank_ = 0;
    int size_ = 1;
};

} // namespace padico::gridccm
