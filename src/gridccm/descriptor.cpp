#include "gridccm/descriptor.hpp"

#include "util/strings.hpp"
#include "util/xml.hpp"

namespace padico::gridccm {

const OpDesc& ParallelFacetDesc::op(const std::string& name) const {
    for (const auto& o : ops)
        if (o.name == name) return o;
    throw LookupError("parallel facet '" + facet + "' has no operation '" +
                      name + "'");
}

ParallelFacetDesc ParallelFacetDesc::parse(const std::string& xml_text) {
    const auto root = util::xml_parse(xml_text);
    PADICO_WIRE_CHECK(root->name() == "parallel-interface",
                      "root must be <parallel-interface>");
    ParallelFacetDesc d;
    d.component = root->attr("component");
    d.facet = root->attr("facet");
    d.server_dist = Distribution::parse(root->attr_or("distribution",
                                                      "block"));
    for (const auto& opx : root->children_named("operation")) {
        OpDesc op;
        op.name = opx->attr("name");
        op.arg_dist = Distribution::parse(opx->attr_or("argument", "block"));
        op.collective = opx->attr_or("collective", "false") == "true";
        const std::string res = opx->attr_or("result", "none");
        if (res == "none") {
            op.result_distributed = false;
        } else {
            // The result uses the server distribution on the way back.
            op.result_distributed = true;
            PADICO_WIRE_CHECK(res == "distributed" || res == "block" ||
                                  res == "cyclic" ||
                                  util::starts_with(res, "block-cyclic"),
                              "bad result distribution '" + res + "'");
        }
        for (const auto& existing : d.ops)
            PADICO_WIRE_CHECK(existing.name != op.name,
                              "duplicate operation '" + op.name + "'");
        d.ops.push_back(std::move(op));
    }
    PADICO_WIRE_CHECK(!d.ops.empty(),
                      "parallel interface declares no operations");
    return d;
}

void cdr_put(corba::cdr::Encoder& e, const OpDesc& v) {
    e.put_string(v.name);
    e.put_string(v.arg_dist.str());
    e.put_bool(v.result_distributed);
    e.put_bool(v.collective);
}

void cdr_get(corba::cdr::Decoder& d, OpDesc& v) {
    v.name = d.get_string();
    v.arg_dist = Distribution::parse(d.get_string());
    v.result_distributed = d.get_bool();
    v.collective = d.get_bool();
}

void cdr_put(corba::cdr::Encoder& e, const ParallelFacetDesc& v) {
    e.put_string(v.component);
    e.put_string(v.facet);
    e.put_string(v.server_dist.str());
    e.put_i32(v.members);
    e.put_u32(static_cast<std::uint32_t>(v.member_refs.size()));
    for (const auto& ior : v.member_refs) corba::cdr_put(e, ior);
    e.put_u32(static_cast<std::uint32_t>(v.ops.size()));
    for (const auto& op : v.ops) cdr_put(e, op);
}

void cdr_get(corba::cdr::Decoder& d, ParallelFacetDesc& v) {
    v.component = d.get_string();
    v.facet = d.get_string();
    v.server_dist = Distribution::parse(d.get_string());
    v.members = d.get_i32();
    v.member_refs.resize(d.get_u32());
    for (auto& ior : v.member_refs) corba::cdr_get(d, ior);
    v.ops.resize(d.get_u32());
    for (auto& op : v.ops) cdr_get(d, op);
}

} // namespace padico::gridccm
