#pragma once
/// \file stub.hpp
/// Client side of the GridCCM interception layer (paper Fig. 4: "GridCCM
/// intercepts and translates remote method invocations"). A ParallelStub
/// is held by every node of the *client* group; a call to a parallel
/// operation is translated into fragment requests to the member nodes of
/// the server component according to the redistribution plan and strategy.

#include <memory>

#include "gridccm/skeleton.hpp"
#include "osal/sync.hpp"

namespace padico::gridccm {

/// Collective handle of a client group onto one parallel facet.
class ParallelStub {
public:
    /// Collective over \p group (every client rank calls with the same
    /// arguments). \p home is the parallel home IOR obtained from a
    /// receptacle or the naming service; rank 0 interrogates it and
    /// broadcasts the description and a fresh binding id to the group.
    /// \p client_dist describes how the group lays out its sequences.
    /// \p checked_collectives: before each invocation the group agrees on
    /// (operation, length, sequence number) via a broadcast from rank 0 and
    /// synchronizes after completion — catching SPMD discipline violations
    /// (mismatched collective invocations) at the cost of two group
    /// collectives per call, as the paper's prototype does.
    ParallelStub(corba::Orb& orb, mpi::Comm& group, const corba::IOR& home,
                 Distribution client_dist = Distribution::block(),
                 bool checked_collectives = true);

    /// A *sequential* client: a group of one (interoperability with
    /// standard components, paper §4.2.1 "parallel components are
    /// interoperable with standard sequential components").
    ParallelStub(corba::Orb& orb, const corba::IOR& home);

    const ParallelFacetDesc& desc() const noexcept { return desc_; }
    int client_rank() const noexcept { return rank_; }
    int client_size() const noexcept { return n_clients_; }

    /// Invoke a parallel operation. \p local_arg is this rank's block of a
    /// sequence of \p global_len elements of \p elem_size bytes, laid out
    /// by the client distribution. Returns this rank's block of the result
    /// (empty for void operations). Collective over the client group.
    util::Message invoke(const std::string& op, util::Message local_arg,
                         std::size_t global_len, std::size_t elem_size,
                         Strategy strategy = Strategy::Auto);

    /// Typed convenience.
    template <typename T>
    std::vector<T> invoke(const std::string& op, std::span<const T> local,
                          std::size_t global_len,
                          Strategy strategy = Strategy::Auto) {
        util::Message arg = util::to_message(
            util::ByteBuf(local.data(), local.size_bytes()));
        util::Message res =
            invoke(op, std::move(arg), global_len, sizeof(T), strategy);
        std::vector<T> out(res.size() / sizeof(T));
        res.copy_out(0, out.data(), res.size());
        return out;
    }

    /// The strategy Auto resolves to for the given shape — exposed so the
    /// ablation benchmark can report the chooser's decisions.
    Strategy choose_strategy(std::size_t global_len,
                             std::size_t elem_size) const;

private:
    void fetch_description(const corba::IOR& home);
    corba::ObjectRef& member_ref(int s);

    /// Send one fragment request to server \p s and apply the reply
    /// fragments to \p result.
    void contact_server(int s, const FragHeader& header,
                        const std::vector<Fragment>& frags,
                        const util::Message& data, std::size_t elem_size,
                        util::ByteBuf* result);

    corba::Orb* orb_;
    mpi::Comm* group_ = nullptr; ///< null for a sequential client
    bool checked_ = true;
    Distribution client_dist_;
    int rank_ = 0;
    int n_clients_ = 1;
    ParallelFacetDesc desc_;
    std::uint64_t binding_ = 0;
    std::uint64_t next_seq_ = 1;
    std::map<int, corba::ObjectRef> members_;
    osal::CheckedMutex members_mu_{lockrank::kGridccmMembers,
                                   "gridccm.members"};
    /// Fast lane: persistent fan-out workers, created on the first
    /// multi-server invocation and reused for every later one (replaces a
    /// std::thread spawn/join per contacted server per call). Unused when
    /// util::caches_enabled() is off.
    std::unique_ptr<osal::TaskPool> fanout_;
};

/// Shared stub/skeleton contact-set logic (defined in skeleton.cpp).
std::vector<int> gridccm_contacted_servers(Strategy strat,
                                           const Distribution& cdist, int n_c,
                                           int r, const Distribution& sdist,
                                           int n_s, std::size_t len,
                                           bool result_distributed,
                                           bool collective = false);

} // namespace padico::gridccm
