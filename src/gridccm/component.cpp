#include "gridccm/component.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace padico::gridccm {

void ParallelComponent::declare_parallel_facet(
    const std::string& xml, std::map<std::string, OpHandler> handlers) {
    PFacet f;
    f.desc = ParallelFacetDesc::parse(xml);
    PADICO_CHECK(f.desc.component == type(),
                 "descriptor is for component '" + f.desc.component +
                     "', not '" + type() + "'");
    f.handlers = std::move(handlers);
    pfacets_.push_back(std::move(f));
}

void ParallelComponent::configuration_complete() {
    auto& ctx = context();
    PADICO_CHECK(ctx.orb != nullptr && ctx.runtime != nullptr,
                 "parallel component used outside a container");

    // Member topology injected by the deployer.
    std::string job = "solo/" + type();
    if (has_attribute("gridccm.size")) {
        rank_ = static_cast<int>(
            util::parse_uint(attribute("gridccm.rank")));
        size_ = static_cast<int>(
            util::parse_uint(attribute("gridccm.size")));
        job = attribute("gridccm.name");
        std::vector<fabric::ProcessId> members;
        for (const auto& p : util::split(attribute("gridccm.members"), ','))
            members.push_back(
                static_cast<fabric::ProcessId>(util::parse_uint(p)));
        PADICO_CHECK(static_cast<int>(members.size()) == size_,
                     "member list does not match gridccm.size");
        world_ = mpi::World::create(*ctx.runtime, "pcomp/" + job,
                                    std::move(members));
    }

    PLOG(debug, "gridccm") << type() << " member " << rank_ << "/" << size_
                           << ": world up, initializing";
    parallel_initialize();

    // Publish each declared parallel facet.
    for (auto& f : pfacets_) {
        f.desc.members = size_;
        f.skeleton = std::make_shared<ParallelSkeleton>(
            f.desc, rank_, member_comm(), f.handlers);
        const corba::IOR skel_ior = ctx.orb->activate(f.skeleton);
        PLOG(debug, "gridccm") << type() << " member " << rank_
                               << ": skeleton for '" << f.desc.facet
                               << "' active, gathering member refs";

        // Gather member skeleton IORs on member 0, which hosts the home.
        std::vector<corba::IOR> member_refs;
        if (size_ == 1) {
            member_refs.push_back(skel_ior);
        } else {
            mpi::Comm& comm = *member_comm();
            const int tag = 77; // fixed bootstrap tag, one use per facet
            if (rank_ == 0) {
                member_refs.resize(static_cast<std::size_t>(size_));
                member_refs[0] = skel_ior;
                for (int r = 1; r < size_; ++r) {
                    mpi::Status st;
                    util::Message m = comm.recv_msg(r, tag, &st);
                    member_refs[static_cast<std::size_t>(r)] =
                        corba::IOR::from_string(
                            corba::cdr::decode_one<std::string>(
                                std::move(m)));
                }
            } else {
                comm.send_msg(
                    corba::cdr::encode(true, skel_ior.to_string()), 0, tag);
            }
        }
        PLOG(debug, "gridccm") << type() << " member " << rank_
                               << ": member refs gathered";

        if (rank_ == 0) {
            ParallelFacetDesc published = f.desc;
            published.member_refs = std::move(member_refs);
            provide_facet(f.desc.facet + ".parallel",
                          std::make_shared<ParallelHomeServant>(published));
            PLOG(info, "gridccm")
                << type() << ": published parallel facet '" << f.desc.facet
                << "' with " << size_ << " member(s)";
        }
    }
}

std::shared_ptr<ParallelStub> ParallelComponent::bind_parallel(
    const std::string& receptacle_name, Distribution client_dist) {
    const corba::IOR home = receptacle(receptacle_name).ior();
    auto& orb = *context().orb;
    if (world_) {
        return std::make_shared<ParallelStub>(orb, world_->world(), home,
                                              client_dist);
    }
    return std::make_shared<ParallelStub>(orb, home);
}

} // namespace padico::gridccm
