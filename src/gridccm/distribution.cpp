#include "gridccm/distribution.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <tuple>

#include "osal/checked.hpp"
#include "osal/lockrank.hpp"
#include "util/cache.hpp"
#include "util/strings.hpp"

namespace padico::gridccm {

// ---------------------------------------------------------------------------
// Distribution

Distribution Distribution::parse(const std::string& s) {
    if (s == "block") return block();
    if (s == "cyclic") return cyclic();
    if (util::starts_with(s, "block-cyclic:"))
        return block_cyclic(util::parse_uint(s.substr(13)));
    if (util::starts_with(s, "block-rows:"))
        return block_rows(util::parse_uint(s.substr(11)));
    throw UsageError("unknown distribution '" + s + "'");
}

std::string Distribution::str() const {
    switch (kind) {
    case Kind::Block: return "block";
    case Kind::Cyclic: return "cyclic";
    case Kind::BlockCyclic:
        return "block-cyclic:" + std::to_string(grain);
    case Kind::BlockRows:
        return "block-rows:" + std::to_string(grain);
    }
    return "?";
}

namespace {

/// Block distribution bounds: first `len % n` ranks get one extra element.
Interval block_interval(int rank, int nranks, std::size_t len) {
    const std::size_t n = static_cast<std::size_t>(nranks);
    const std::size_t r = static_cast<std::size_t>(rank);
    const std::size_t base = len / n;
    const std::size_t extra = len % n;
    const std::size_t lo = r * base + std::min(r, extra);
    const std::size_t size = base + (r < extra ? 1 : 0);
    return Interval{lo, lo + size};
}

/// Inverse of block_interval: owner of index \p g.
int block_owner(std::size_t g, int nranks, std::size_t len) {
    const std::size_t n = static_cast<std::size_t>(nranks);
    const std::size_t base = len / n;
    const std::size_t extra = len % n;
    const std::size_t pivot = extra * (base + 1);
    if (g < pivot) return static_cast<int>(g / (base + 1));
    PADICO_CHECK(base > 0, "internal: pivot covers all");
    return static_cast<int>(extra + (g - pivot) / base);
}

} // namespace

std::vector<Interval> Distribution::intervals(int rank, int nranks,
                                              std::size_t len) const {
    PADICO_CHECK(nranks >= 1 && rank >= 0 && rank < nranks,
                 "bad rank/nranks");
    std::vector<Interval> out;
    switch (kind) {
    case Kind::Block: {
        const Interval iv = block_interval(rank, nranks, len);
        if (!iv.empty()) out.push_back(iv);
        return out;
    }
    case Kind::BlockRows: {
        // Whole rows of width `grain`, block-divided over ranks; the
        // element range of a rank is one contiguous interval.
        PADICO_CHECK(len % grain == 0,
                     "sequence length is not a whole number of rows");
        const Interval rows = block_interval(rank, nranks, len / grain);
        if (!rows.empty())
            out.push_back(Interval{rows.lo * grain, rows.hi * grain});
        return out;
    }
    case Kind::Cyclic:
    case Kind::BlockCyclic: {
        const std::size_t g = kind == Kind::Cyclic ? 1 : grain;
        const std::size_t stride = g * static_cast<std::size_t>(nranks);
        for (std::size_t start = g * static_cast<std::size_t>(rank);
             start < len; start += stride) {
            out.push_back(Interval{start, std::min(start + g, len)});
        }
        return out;
    }
    }
    throw UsageError("bad distribution kind");
}

std::size_t Distribution::local_size(int rank, int nranks,
                                     std::size_t len) const {
    std::size_t total = 0;
    for (const auto& iv : intervals(rank, nranks, len)) total += iv.size();
    return total;
}

int Distribution::owner(std::size_t g, int nranks, std::size_t len) const {
    PADICO_CHECK(g < len, "index out of range");
    switch (kind) {
    case Kind::Block:
        return block_owner(g, nranks, len);
    case Kind::BlockRows:
        PADICO_CHECK(len % grain == 0,
                     "sequence length is not a whole number of rows");
        return block_owner(g / grain, nranks, len / grain);
    case Kind::Cyclic:
        return static_cast<int>(g % static_cast<std::size_t>(nranks));
    case Kind::BlockCyclic:
        return static_cast<int>((g / grain) % static_cast<std::size_t>(nranks));
    }
    throw UsageError("bad distribution kind");
}

std::size_t Distribution::global_to_local(std::size_t g, int rank,
                                          int nranks,
                                          std::size_t len) const {
    std::size_t local = 0;
    for (const auto& iv : intervals(rank, nranks, len)) {
        if (g >= iv.lo && g < iv.hi) return local + (g - iv.lo);
        local += iv.size();
    }
    throw UsageError("global index not owned by rank");
}

// ---------------------------------------------------------------------------
// RedistPlan

std::vector<Fragment> RedistPlan::from(int src_rank) const {
    std::vector<Fragment> out;
    for (const auto& f : fragments)
        if (f.src == src_rank) out.push_back(f);
    return out;
}

std::vector<Fragment> RedistPlan::to(int dst_rank) const {
    std::vector<Fragment> out;
    for (const auto& f : fragments)
        if (f.dst == dst_rank) out.push_back(f);
    return out;
}

std::vector<int> RedistPlan::targets_of(int src_rank) const {
    std::vector<int> out;
    for (const auto& f : fragments) {
        if (f.src == src_rank &&
            std::find(out.begin(), out.end(), f.dst) == out.end())
            out.push_back(f.dst);
    }
    return out;
}

std::size_t RedistPlan::total() const {
    std::size_t t = 0;
    for (const auto& f : fragments) t += f.len;
    return t;
}

RedistPlan compute_plan(const Distribution& src_dist, int n_src,
                        const Distribution& dst_dist, int n_dst,
                        std::size_t len) {
    PADICO_CHECK(n_src >= 1 && n_dst >= 1, "need at least one rank per side");
    RedistPlan plan;
    plan.len = len;
    plan.n_src = n_src;
    plan.n_dst = n_dst;

    // Precompute destination interval lists with local prefix offsets.
    struct DstIv {
        Interval iv;
        int rank;
        std::size_t local_off; // of iv.lo in dst's local vector
    };
    std::vector<DstIv> dst_ivs;
    for (int d = 0; d < n_dst; ++d) {
        std::size_t local = 0;
        for (const auto& iv : dst_dist.intervals(d, n_dst, len)) {
            dst_ivs.push_back(DstIv{iv, d, local});
            local += iv.size();
        }
    }
    std::sort(dst_ivs.begin(), dst_ivs.end(),
              [](const DstIv& a, const DstIv& b) { return a.iv.lo < b.iv.lo; });

    // Walk each source interval, intersecting with destination intervals.
    for (int s = 0; s < n_src; ++s) {
        std::size_t src_local = 0;
        for (const auto& siv : src_dist.intervals(s, n_src, len)) {
            // Binary search for the first destination interval overlapping.
            auto it = std::upper_bound(
                dst_ivs.begin(), dst_ivs.end(), siv.lo,
                [](std::size_t lo, const DstIv& d) { return lo < d.iv.hi; });
            for (; it != dst_ivs.end() && it->iv.lo < siv.hi; ++it) {
                const std::size_t lo = std::max(siv.lo, it->iv.lo);
                const std::size_t hi = std::min(siv.hi, it->iv.hi);
                if (lo >= hi) continue;
                Fragment f;
                f.src = s;
                f.dst = it->rank;
                f.src_off = src_local + (lo - siv.lo);
                f.dst_off = it->local_off + (lo - it->iv.lo);
                f.len = hi - lo;
                plan.fragments.push_back(f);
            }
            src_local += siv.size();
        }
    }
    return plan;
}

// ---------------------------------------------------------------------------
// Plan cache

namespace {

// (src kind, src grain, n_src, dst kind, dst grain, n_dst, len)
using PlanKey = std::tuple<int, std::size_t, int, int, std::size_t, int,
                           std::size_t>;

osal::CheckedMutex g_plan_mu{lockrank::kGridccmPlanCache,
                             "gridccm.plan_cache"};
std::map<PlanKey, PlanPtr>& plan_table() {
    static std::map<PlanKey, PlanPtr> t;
    return t;
}
std::atomic<std::uint64_t> g_plan_hits{0};
std::atomic<std::uint64_t> g_plan_misses{0};

} // namespace

PlanPtr shared_plan(const Distribution& src_dist, int n_src,
                    const Distribution& dst_dist, int n_dst,
                    std::size_t len) {
    if (!util::caches_enabled()) {
        // Full bypass: fresh object, counters untouched (so a disabled run
        // reports 0/0 rather than fake misses).
        return std::make_shared<const RedistPlan>(
            compute_plan(src_dist, n_src, dst_dist, n_dst, len));
    }
    const PlanKey key{static_cast<int>(src_dist.kind), src_dist.grain, n_src,
                      static_cast<int>(dst_dist.kind), dst_dist.grain, n_dst,
                      len};
    {
        osal::CheckedLock lk(g_plan_mu);
        auto it = plan_table().find(key);
        if (it != plan_table().end()) {
            g_plan_hits.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // Compute outside the lock (plans can be large); concurrent fillers of
    // the same key agree on the value, the first insert wins.
    g_plan_misses.fetch_add(1, std::memory_order_relaxed);
    auto plan = std::make_shared<const RedistPlan>(
        compute_plan(src_dist, n_src, dst_dist, n_dst, len));
    osal::CheckedLock lk(g_plan_mu);
    auto [it, inserted] = plan_table().try_emplace(key, std::move(plan));
    return it->second;
}

PlanCacheStats plan_cache_stats() {
    PlanCacheStats s;
    s.hits = g_plan_hits.load(std::memory_order_relaxed);
    s.misses = g_plan_misses.load(std::memory_order_relaxed);
    return s;
}

void reset_plan_cache() {
    osal::CheckedLock lk(g_plan_mu);
    plan_table().clear();
    g_plan_hits.store(0, std::memory_order_relaxed);
    g_plan_misses.store(0, std::memory_order_relaxed);
}

} // namespace padico::gridccm
