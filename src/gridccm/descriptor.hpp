#pragma once
/// \file descriptor.hpp
/// The GridCCM parallelism description (paper §4.2.2, Fig. 5): alongside
/// the IDL of a component, an XML document declares which facet operations
/// take distributed arguments and how they are distributed. The paper's
/// GridCCM compiler consumes IDL + this XML and generates the interception
/// layer; in this reproduction the descriptor is interpreted at runtime by
/// the generic ParallelStub/ParallelSkeleton pair (documented substitution
/// — same information, no code generation step).
///
///   <parallel-interface component="Chemistry" facet="sim"
///                       distribution="block">
///     <operation name="setField" argument="block" result="block"/>
///     <operation name="norm" argument="block" result="none"/>
///   </parallel-interface>

#include "corba/orb.hpp"
#include "gridccm/distribution.hpp"

namespace padico::gridccm {

/// One parallel operation of a facet.
struct OpDesc {
    std::string name;
    Distribution arg_dist = Distribution::block();
    /// True: the result is a sequence of the same global length as the
    /// argument, distributed back to the callers. False: void result.
    bool result_distributed = false;
    /// True: the operation body runs member collectives (e.g. MPI
    /// barriers), so EVERY member must observe every invocation even when
    /// the data layout leaves it without a fragment. Declared in XML as
    /// collective="true".
    bool collective = false;
};

/// A parallel facet of a parallel component.
struct ParallelFacetDesc {
    std::string component; ///< component type name
    std::string facet;
    Distribution server_dist = Distribution::block();
    std::vector<OpDesc> ops;

    // Filled in at publication time (runtime information):
    int members = 0;                      ///< number of member nodes
    std::vector<corba::IOR> member_refs;  ///< per-member skeleton IORs

    const OpDesc& op(const std::string& name) const;

    /// Parse the static part from XML.
    static ParallelFacetDesc parse(const std::string& xml_text);
};

// CDR marshalling (the descriptor travels in the home's "describe" reply).
void cdr_put(corba::cdr::Encoder& e, const OpDesc& v);
void cdr_get(corba::cdr::Decoder& d, OpDesc& v);
void cdr_put(corba::cdr::Encoder& e, const ParallelFacetDesc& v);
void cdr_get(corba::cdr::Decoder& d, ParallelFacetDesc& v);

} // namespace padico::gridccm
