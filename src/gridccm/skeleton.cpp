#include "gridccm/skeleton.hpp"

#include "fabric/netmodel.hpp"
#include "osal/blocking.hpp"
#include "util/log.hpp"

namespace padico::gridccm {

const char* strategy_name(Strategy s) {
    switch (s) {
    case Strategy::InFlight: return "in-flight";
    case Strategy::ClientSide: return "client-side";
    case Strategy::ServerSide: return "server-side";
    case Strategy::Auto: return "auto";
    }
    return "?";
}

void cdr_put(corba::cdr::Encoder& e, const FragHeader& v) {
    e.put_u64(v.binding);
    e.put_u64(v.seq);
    e.put_string(v.op);
    e.put_u8(v.strategy);
    e.put_u64(v.global_len);
    e.put_u32(v.elem_size);
    e.put_u32(v.n_clients);
    e.put_u32(v.client_rank);
    e.put_string(v.client_dist.str());
}

void cdr_get(corba::cdr::Decoder& d, FragHeader& v) {
    v.binding = d.get_u64();
    v.seq = d.get_u64();
    v.op = d.get_string();
    v.strategy = d.get_u8();
    v.global_len = d.get_u64();
    v.elem_size = d.get_u32();
    v.n_clients = d.get_u32();
    v.client_rank = d.get_u32();
    v.client_dist = Distribution::parse(d.get_string());
}

namespace {

/// One real+modeled memcpy pass: the GridCCM layer's (re)assembly copy.
void charge_copy(std::size_t bytes) {
    fabric::Process::current().clock().advance(static_cast<SimTime>(
        static_cast<double>(bytes) * fabric::copy_ns_per_byte(1)));
}

/// Per-fragment bookkeeping cost of the interception layer.
constexpr SimTime kPerFragmentCpu = usec(0.5);

/// Which servers does client \p r contact for one invocation? Shared,
/// deterministic logic: the stub uses it to fan out, the skeleton to know
/// how many requests to expect.
std::vector<int> contacted_servers(Strategy strat,
                                   const Distribution& cdist, int n_c, int r,
                                   const Distribution& sdist, int n_s,
                                   std::size_t len, bool result_distributed,
                                   bool collective) {
    std::vector<bool> hit(static_cast<std::size_t>(n_s), false);
    if (collective) {
        // The operation body runs member collectives: every member must
        // observe the invocation, data or not.
        std::vector<int> all(static_cast<std::size_t>(n_s));
        for (int s = 0; s < n_s; ++s) all[static_cast<std::size_t>(s)] = s;
        return all;
    }
    switch (strat) {
    case Strategy::InFlight: {
        const PlanPtr in = shared_plan(cdist, n_c, sdist, n_s, len);
        for (int s : in->targets_of(r))
            hit[static_cast<std::size_t>(s)] = true;
        break;
    }
    case Strategy::ClientSide: {
        // After the client-side shuffle, client r holds the blocks of the
        // servers mapped to it.
        for (int s = r; s < n_s; s += n_c)
            if (sdist.local_size(s, n_s, len) > 0)
                hit[static_cast<std::size_t>(s)] = true;
        break;
    }
    case Strategy::ServerSide:
        // Every server participates in the collective shuffle, so every
        // server must see the invocation.
        for (int s = 0; s < n_s; ++s) hit[static_cast<std::size_t>(s)] = true;
        break;
    case Strategy::Auto:
        throw UsageError("Auto must be resolved before wire use");
    }
    if (result_distributed) {
        const PlanPtr out = shared_plan(sdist, n_s, cdist, n_c, len);
        for (const auto& f : out->fragments)
            if (f.dst == r) hit[static_cast<std::size_t>(f.src)] = true;
    }
    std::vector<int> out;
    for (int s = 0; s < n_s; ++s)
        if (hit[static_cast<std::size_t>(s)]) out.push_back(s);
    return out;
}

} // namespace

/// Exposed for the stub (declared in stub.hpp).
std::vector<int> gridccm_contacted_servers(Strategy strat,
                                           const Distribution& cdist, int n_c,
                                           int r, const Distribution& sdist,
                                           int n_s, std::size_t len,
                                           bool result_distributed,
                                           bool collective) {
    return contacted_servers(strat, cdist, n_c, r, sdist, n_s, len,
                             result_distributed, collective);
}

// ---------------------------------------------------------------------------
// ParallelSkeleton

ParallelSkeleton::ParallelSkeleton(ParallelFacetDesc desc, int rank,
                                   mpi::Comm* comm,
                                   std::map<std::string, OpHandler> handlers)
    : desc_(std::move(desc)), rank_(rank), comm_(comm),
      handlers_(std::move(handlers)) {
    for (const auto& op : desc_.ops)
        PADICO_CHECK(handlers_.count(op.name) != 0,
                     "no handler for declared operation '" + op.name + "'");
}

void ParallelSkeleton::dispatch(const std::string& op,
                                corba::cdr::Decoder& in,
                                corba::cdr::Encoder& out) {
    if (op == "frag") {
        handle_frag(in, out);
        return;
    }
    throw RemoteError("BAD_OPERATION " + op);
}

util::ByteBuf ParallelSkeleton::server_side_shuffle(Invocation& inv,
                                                    const FragHeader& h) {
    // Redistribute the raw per-client blocks across the member
    // communicator so each member ends up with its own block.
    const std::size_t esz = h.elem_size;
    const int n_s = desc_.members;
    const PlanPtr plan_ptr =
        shared_plan(h.client_dist, static_cast<int>(h.n_clients),
                    desc_.server_dist, n_s, h.global_len);
    const RedistPlan& plan = *plan_ptr;

    // Build one message per destination member: [u32 count,
    // {u64 dst_off, u64 len, payload}...]. Count first, ONE stream per
    // destination (CDR alignment is stream-relative).
    std::vector<std::uint32_t> counts(static_cast<std::size_t>(n_s), 0);
    for (const auto& f : plan.fragments)
        if (f.src % n_s == rank_) ++counts[static_cast<std::size_t>(f.dst)];
    std::vector<corba::cdr::Encoder> encoders;
    for (int d = 0; d < n_s; ++d) {
        encoders.emplace_back(true);
        encoders.back().put_u32(counts[static_cast<std::size_t>(d)]);
    }
    for (const auto& f : plan.fragments) {
        const int holder = f.src % n_s;
        if (holder != rank_) continue;
        auto raw_it = inv.raw.find(static_cast<std::uint32_t>(f.src));
        PADICO_CHECK(raw_it != inv.raw.end(), "missing raw client block");
        auto& enc = encoders[static_cast<std::size_t>(f.dst)];
        enc.put_u64(f.dst_off);
        enc.put_u64(f.len);
        enc.put_bytes(raw_it->second.data() + f.src_off * esz, f.len * esz);
    }
    std::vector<util::Message> to_send;
    for (int d = 0; d < n_s; ++d)
        to_send.push_back(encoders[static_cast<std::size_t>(d)].take());

    std::vector<util::Message> received;
    if (comm_ != nullptr) {
        received = comm_->alltoallv_msg(std::move(to_send));
    } else {
        PADICO_CHECK(n_s == 1, "multi-member skeleton without communicator");
        received = std::move(to_send); // single member: shuffle is local
    }

    util::ByteBuf block(desc_.server_dist.local_size(rank_, n_s,
                                                     h.global_len) *
                        esz);
    for (auto& msg : received) {
        corba::cdr::Decoder dec(std::move(msg));
        const std::uint32_t count = dec.get_u32();
        for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint64_t dst_off = dec.get_u64();
            const std::uint64_t len = dec.get_u64();
            util::Message piece = dec.get_bytes_msg(len * esz);
            PADICO_WIRE_CHECK((dst_off + len) * esz <= block.size(),
                              "shuffle fragment out of range");
            piece.copy_out(0, block.data() + dst_off * esz, len * esz);
            charge_copy(len * esz);
        }
    }
    return block;
}

void ParallelSkeleton::run_operation(Invocation& inv, const FragHeader& h,
                                     osal::CheckedUniqueLock& lk) {
    const OpDesc& opd = desc_.op(h.op);
    util::ByteBuf arg;
    if (static_cast<Strategy>(h.strategy) == Strategy::ServerSide) {
        // The shuffle is a collective: run it without the state lock so
        // concurrent contacts can still deposit into *other* invocations.
        // It waits on peer members, so tell a pooled server thread it may
        // lend its slot meanwhile.
        lk.unlock();
        {
            osal::BlockingHint::Region blocking;
            arg = server_side_shuffle(inv, h);
        }
        lk.lock();
    } else {
        arg = std::move(inv.arg);
    }

    OpContext ctx;
    ctx.member_rank = rank_;
    ctx.member_size = desc_.members;
    ctx.member_clusters = comm_ != nullptr ? comm_->topo().clusters() : 1;
    ctx.global_len = h.global_len;
    ctx.elem_size = h.elem_size;
    ctx.local_len = arg.size() / std::max<std::size_t>(1, h.elem_size);
    ctx.comm = comm_;

    auto handler = handlers_.at(h.op);
    // The user operation may itself perform collectives; release the lock
    // and mark the span as potentially blocking on peer progress.
    lk.unlock();
    util::Message result;
    {
        osal::BlockingHint::Region blocking;
        result = handler(ctx, util::to_message(std::move(arg)));
    }
    lk.lock();

    if (opd.result_distributed) {
        PADICO_WIRE_CHECK(
            result.size() == desc_.server_dist.local_size(
                                 rank_, desc_.members, h.global_len) *
                                 h.elem_size,
            "operation result block has the wrong length");
        inv.out_plan = shared_plan(desc_.server_dist, desc_.members,
                                   h.client_dist,
                                   static_cast<int>(h.n_clients),
                                   h.global_len);
    } else {
        PADICO_CHECK(result.empty(),
                     "operation declared void returned data");
    }
    inv.result = std::move(result);
    inv.done = true;
    invocations_.fetch_add(1);
    inv.cv.notify_all();
}

void ParallelSkeleton::handle_frag(corba::cdr::Decoder& in,
                                   corba::cdr::Encoder& out) {
    FragHeader h;
    cdr_get(in, h);
    const auto strat = static_cast<Strategy>(h.strategy);
    const OpDesc& opd = desc_.op(h.op); // validates the operation
    const std::size_t esz = h.elem_size;
    const int n_s = desc_.members;

    osal::CheckedUniqueLock lk(mu_);
    auto key = std::make_pair(h.binding, h.seq);
    auto it = invocations_map_.find(key);
    if (it == invocations_map_.end()) {
        auto inv = std::make_unique<Invocation>();
        // Deterministic expectations from the header.
        if (strat == Strategy::ServerSide) {
            std::size_t raw = 0;
            for (std::uint32_t r = 0; r < h.n_clients; ++r) {
                if (static_cast<int>(r) % n_s == rank_)
                    raw += h.client_dist.local_size(
                               static_cast<int>(r),
                               static_cast<int>(h.n_clients),
                               h.global_len) *
                           esz;
            }
            inv->expected_data = raw;
        } else {
            inv->expected_data =
                desc_.server_dist.local_size(rank_, n_s, h.global_len) * esz;
            inv->arg.resize(inv->expected_data);
        }
        std::size_t contacts = 0;
        for (std::uint32_t r = 0; r < h.n_clients; ++r) {
            for (int s : contacted_servers(
                     strat, h.client_dist, static_cast<int>(h.n_clients),
                     static_cast<int>(r), desc_.server_dist, n_s,
                     h.global_len, opd.result_distributed, opd.collective))
                if (s == rank_) ++contacts;
        }
        inv->expected_contacts = contacts;
        it = invocations_map_.emplace(key, std::move(inv)).first;
    }
    Invocation& inv = *it->second;

    // Deposit this request's fragments.
    const std::uint32_t n_frags = in.get_u32();
    if (strat == Strategy::ServerSide) {
        if (n_frags > 0) {
            PADICO_WIRE_CHECK(n_frags == 1,
                              "raw mode carries one block per client");
            const std::uint64_t len = in.get_u64();
            util::Message piece = in.get_bytes_msg(len * esz);
            util::ByteBuf raw(len * esz);
            piece.copy_out(0, raw.data(), raw.size());
            charge_copy(raw.size());
            inv.received_data += raw.size();
            inv.raw[h.client_rank] = std::move(raw);
        }
    } else {
        for (std::uint32_t i = 0; i < n_frags; ++i) {
            const std::uint64_t dst_off = in.get_u64();
            const std::uint64_t len = in.get_u64();
            util::Message piece = in.get_bytes_msg(len * esz);
            PADICO_WIRE_CHECK((dst_off + len) * esz <= inv.arg.size(),
                              "fragment outside member block");
            piece.copy_out(0, inv.arg.data() + dst_off * esz, len * esz);
            charge_copy(len * esz);
            inv.received_data += len * esz;
        }
    }
    fabric::Process::current().clock().advance(
        kPerFragmentCpu * std::max<std::uint32_t>(1, n_frags));

    PLOG(debug, "gridccm") << "skel[" << rank_ << "] " << h.op << " seq "
                           << h.seq << " from client " << h.client_rank
                           << ": data " << inv.received_data << "/"
                           << inv.expected_data << " contacts "
                           << inv.served << "+1/" << inv.expected_contacts
                           << " at "
                           << format_simtime(
                                  fabric::Process::current().now());
    // The contact completing the data (or the first contact when no data
    // is expected) triggers the operation.
    if (!inv.started && inv.received_data == inv.expected_data) {
        inv.started = true;
        run_operation(inv, h, lk);
    }
    if (!inv.done) {
        // Rendezvous: this contact parks until the peers' contacts (served
        // on other connections) complete the invocation — the canonical
        // cross-request wait a pooled server must be warned about.
        osal::BlockingHint::Region blocking;
        inv.cv.wait(lk, [&] { return inv.done; });
    }

    // Build this client's reply: its share of the distributed result.
    // Encoded as ONE stream (count first): CDR alignment is relative to
    // the stream start, so sub-encoders cannot be concatenated inline.
    std::vector<const Fragment*> mine;
    if (opd.result_distributed) {
        for (const auto& f : inv.out_plan->fragments) {
            if (f.src == rank_ &&
                f.dst == static_cast<int>(h.client_rank))
                mine.push_back(&f);
        }
    }
    out.put_u32(static_cast<std::uint32_t>(mine.size()));
    for (const Fragment* f : mine) {
        out.put_u64(f->dst_off);
        out.put_u64(f->len);
        out.put_message(inv.result.slice(f->src_off * esz, f->len * esz));
    }

    if (++inv.served == inv.expected_contacts) {
        invocations_map_.erase(it);
    }
}

// ---------------------------------------------------------------------------
// ParallelHomeServant

void ParallelHomeServant::dispatch(const std::string& op,
                                   corba::cdr::Decoder& in,
                                   corba::cdr::Encoder& out) {
    (void)in;
    if (op == "describe") {
        cdr_put(out, desc_);
    } else if (op == "bind") {
        out.put_u64(next_binding_.fetch_add(1));
    } else {
        throw RemoteError("BAD_OPERATION " + op);
    }
}

} // namespace padico::gridccm
