#pragma once
/// \file skeleton.hpp
/// Server side of the GridCCM interception layer (paper §4.2.2, Fig. 4):
/// each member node of a parallel component hosts a ParallelSkeleton
/// servant. Client nodes send their data fragments to it; the skeleton
/// reassembles the member's local block, runs the server-side
/// redistribution when the client chose that strategy (a collective
/// exchange over the member communicator), invokes the user operation
/// exactly once per member, and hands each contacting client its share of
/// the distributed result in the GIOP reply.

#include <condition_variable>

#include "corba/stub.hpp"
#include "gridccm/descriptor.hpp"
#include "mpi/mpi.hpp"
#include "osal/checked.hpp"
#include "osal/lockrank.hpp"

namespace padico::gridccm {

/// Redistribution strategies (paper §4.2.2: "on the client side, on the
/// server side or during the communication").
enum class Strategy : std::uint8_t {
    InFlight = 0,   ///< fragments travel directly client node -> server node
    ClientSide = 1, ///< clients pre-shuffle over their own network first
    ServerSide = 2, ///< servers post-shuffle over their own network
    Auto = 255,     ///< stub chooses from the network model
};

const char* strategy_name(Strategy s);

/// What the user operation sees.
struct OpContext {
    int member_rank = 0;
    int member_size = 1;
    /// Topology clusters the member communicator spans (from its TopoMap;
    /// 1 on flat grids or without a communicator).  Operation bodies can
    /// use it to pick cluster-aware algorithms.
    int member_clusters = 1;
    std::size_t global_len = 0; ///< elements
    std::size_t elem_size = 1;  ///< bytes per element
    std::size_t local_len = 0;  ///< elements in this member's block
    mpi::Comm* comm = nullptr;  ///< member communicator
};

/// User operation: local argument block in, local result block out (empty
/// when the operation's result is void).
using OpHandler =
    std::function<util::Message(const OpContext&, util::Message local_arg)>;

/// Wire header of one "frag" request (followed in CDR by the fragment list
/// and payloads).
struct FragHeader {
    std::uint64_t binding = 0;
    std::uint64_t seq = 0;
    std::string op;
    std::uint8_t strategy = 0; ///< InFlight or ServerSide (raw mode)
    std::uint64_t global_len = 0;
    std::uint32_t elem_size = 0;
    std::uint32_t n_clients = 0;
    std::uint32_t client_rank = 0;
    Distribution client_dist; ///< layout on the sending group
};

void cdr_put(corba::cdr::Encoder& e, const FragHeader& v);
void cdr_get(corba::cdr::Decoder& d, FragHeader& v);

/// The per-member servant.
class ParallelSkeleton : public corba::Servant {
public:
    /// \p desc is the static facet description; \p rank/\p comm identify
    /// this member; \p handlers maps operation names to implementations.
    ParallelSkeleton(ParallelFacetDesc desc, int rank, mpi::Comm* comm,
                     std::map<std::string, OpHandler> handlers);

    std::string interface() const override {
        return "IDL:padico/ParallelSkeleton/" + desc_.component + "/" +
               desc_.facet + ":1.0";
    }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override;

    /// Number of invocations executed (for tests).
    std::uint64_t invocations() const noexcept { return invocations_; }

private:
    struct Invocation {
        // Expected amounts, computed deterministically from the header.
        std::size_t expected_data = 0;     ///< bytes
        std::size_t expected_contacts = 0; ///< client requests to serve
        std::size_t received_data = 0;
        std::size_t served = 0;
        bool started = false;
        bool done = false;
        // Direct mode: assembled local argument block.
        util::ByteBuf arg;
        // Raw mode (ServerSide): per-client raw blocks.
        std::map<std::uint32_t, util::ByteBuf> raw;
        // Result: this member's local result block (empty for void ops).
        util::Message result;
        PlanPtr out_plan; ///< server layout -> client layout (shared)
        osal::CheckedCondVar cv;
    };

    void handle_frag(corba::cdr::Decoder& in, corba::cdr::Encoder& out);
    void run_operation(Invocation& inv, const FragHeader& h,
                       osal::CheckedUniqueLock& lk);
    util::ByteBuf server_side_shuffle(Invocation& inv, const FragHeader& h);

    ParallelFacetDesc desc_;
    int rank_;
    mpi::Comm* comm_;
    std::map<std::string, OpHandler> handlers_;

    osal::CheckedMutex mu_{lockrank::kGridccmSkeleton,
                           "gridccm.skeleton"};
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::unique_ptr<Invocation>>
        invocations_map_;
    std::atomic<std::uint64_t> invocations_{0};
};

/// The home object published as facet "<facet>.parallel" on member 0.
/// External references to a parallel component point here; GridCCM-aware
/// clients call describe()/bind(), which is how "the nodes of a parallel
/// component are not directly exposed to other components" (§4.2.1).
class ParallelHomeServant : public corba::Servant {
public:
    explicit ParallelHomeServant(ParallelFacetDesc desc)
        : desc_(std::move(desc)) {}

    std::string interface() const override {
        return "IDL:padico/ParallelHome:1.0";
    }
    void dispatch(const std::string& op, corba::cdr::Decoder& in,
                  corba::cdr::Encoder& out) override;

private:
    ParallelFacetDesc desc_;
    std::atomic<std::uint64_t> next_binding_{1};
};

} // namespace padico::gridccm
