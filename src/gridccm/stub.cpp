#include "gridccm/stub.hpp"

#include <thread>

#include "util/cache.hpp"
#include "util/log.hpp"

namespace padico::gridccm {

namespace {

/// Per-invocation client-side bookkeeping cost of the interception layer.
constexpr SimTime kPerInvokeCpu = usec(1.0);
constexpr SimTime kPerFragmentCpu = usec(0.5);

void charge_copy(fabric::Process& proc, std::size_t bytes) {
    proc.clock().advance(static_cast<SimTime>(
        static_cast<double>(bytes) * fabric::copy_ns_per_byte(1)));
}

/// Servers owned by client r under the client-side strategy, ascending.
std::vector<int> owned_servers(int r, int n_c, int n_s,
                               const Distribution& sdist, std::size_t len) {
    std::vector<int> out;
    for (int s = r; s < n_s; s += n_c)
        if (sdist.local_size(s, n_s, len) > 0) out.push_back(s);
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// Construction

ParallelStub::ParallelStub(corba::Orb& orb, mpi::Comm& group,
                           const corba::IOR& home, Distribution client_dist,
                           bool checked_collectives)
    : orb_(&orb), group_(&group), checked_(checked_collectives),
      client_dist_(client_dist), rank_(group.rank()),
      n_clients_(group.size()) {
    if (rank_ == 0) fetch_description(home);
    // Broadcast description + binding to the group.
    util::ByteBuf blob;
    if (rank_ == 0) {
        corba::cdr::Encoder e(true);
        cdr_put(e, desc_);
        e.put_u64(binding_);
        blob = e.take().gather();
    }
    std::uint64_t len = blob.size();
    group.bcast_bytes(&len, sizeof len, 0);
    blob.resize(len);
    group.bcast_bytes(blob.data(), len, 0);
    if (rank_ != 0) {
        corba::cdr::Decoder d(util::to_message(std::move(blob)));
        cdr_get(d, desc_);
        binding_ = d.get_u64();
    }
}

ParallelStub::ParallelStub(corba::Orb& orb, const corba::IOR& home)
    : orb_(&orb), client_dist_(Distribution::block()) {
    fetch_description(home);
}

void ParallelStub::fetch_description(const corba::IOR& home) {
    corba::ObjectRef ref = orb_->resolve(home);
    util::Message dm = ref.invoke("describe", util::Message());
    corba::cdr::Decoder d(std::move(dm));
    cdr_get(d, desc_);
    PADICO_CHECK(desc_.members >= 1 &&
                     desc_.member_refs.size() ==
                         static_cast<std::size_t>(desc_.members),
                 "malformed parallel facet description");
    util::Message bm = ref.invoke("bind", util::Message());
    binding_ = corba::cdr::Decoder(std::move(bm)).get_u64();
}

corba::ObjectRef& ParallelStub::member_ref(int s) {
    osal::CheckedLock lk(members_mu_);
    auto it = members_.find(s);
    if (it == members_.end()) {
        it = members_
                 .emplace(s, orb_->resolve(desc_.member_refs[
                                 static_cast<std::size_t>(s)]))
                 .first;
    }
    return it->second;
}

// ---------------------------------------------------------------------------
// Strategy chooser

Strategy ParallelStub::choose_strategy(std::size_t global_len,
                                       std::size_t elem_size) const {
    const int n_s = desc_.members;
    // Identity layouts: fragments already go point-to-point, nothing to
    // consolidate.
    if (n_clients_ == n_s && client_dist_ == desc_.server_dist)
        return Strategy::InFlight;
    const PlanPtr plan = shared_plan(client_dist_, n_clients_,
                                     desc_.server_dist, n_s, global_len);
    const std::size_t total_frags = std::max<std::size_t>(
        1, plan->fragments.size());
    const std::size_t avg_frag_bytes =
        global_len * elem_size / total_frags;
    // Mismatched *contiguous* layouts (block->block with different node
    // counts) still produce a handful of large fragments per client —
    // in-flight moves them directly with amortized per-fragment cost.
    if (avg_frag_bytes >= 16 * 1024 ||
        total_frags <= 4 * static_cast<std::size_t>(
                               std::max(n_clients_, n_s)))
        return Strategy::InFlight;
    // Interleaved layouts (cyclic/block-cyclic vs block) shatter into many
    // tiny fragments: consolidate on the side with more nodes, whose
    // internal network absorbs the shuffle and whose peer then receives
    // one contiguous block without per-fragment bookkeeping (paper §4.2.2:
    // the decision weighs client vs server network performance and memory
    // feasibility).
    //
    // When the client group spans several topology clusters, its shuffle
    // rides the hierarchical alltoallv (same TopoMap as the collectives):
    // streams aggregate at each cluster leader before crossing a gateway,
    // so client-side consolidation wins regardless of the node-count tie.
    if (group_ != nullptr && group_->topo().hierarchical())
        return Strategy::ClientSide;
    return n_clients_ >= n_s ? Strategy::ClientSide : Strategy::ServerSide;
}

// ---------------------------------------------------------------------------
// Invocation

void ParallelStub::contact_server(int s, const FragHeader& header,
                                  const std::vector<Fragment>& frags,
                                  const util::Message& data,
                                  std::size_t elem_size,
                                  util::ByteBuf* result) {
    corba::cdr::Encoder e(orb_->profile().zero_copy);
    cdr_put(e, header);
    e.put_u32(static_cast<std::uint32_t>(frags.size()));
    for (const auto& f : frags) {
        if (static_cast<Strategy>(header.strategy) == Strategy::ServerSide) {
            e.put_u64(f.len);
        } else {
            e.put_u64(f.dst_off);
            e.put_u64(f.len);
        }
        e.put_message(data.slice(f.src_off * elem_size, f.len * elem_size));
    }
    util::Message reply = member_ref(s).invoke("frag", e.take());
    corba::cdr::Decoder d(std::move(reply));
    const std::uint32_t count = d.get_u32();
    auto& proc = orb_->runtime().process();
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t dst_off = d.get_u64();
        const std::uint64_t len = d.get_u64();
        util::Message piece = d.get_bytes_msg(len * elem_size);
        PADICO_CHECK(result != nullptr, "unexpected result fragments");
        PADICO_WIRE_CHECK((dst_off + len) * elem_size <= result->size(),
                          "result fragment out of range");
        piece.copy_out(0, result->data() + dst_off * elem_size,
                       len * elem_size);
        charge_copy(proc, len * elem_size);
    }
}

util::Message ParallelStub::invoke(const std::string& op,
                                   util::Message local_arg,
                                   std::size_t global_len,
                                   std::size_t elem_size, Strategy strategy) {
    const OpDesc& opd = desc_.op(op);
    if (strategy == Strategy::Auto)
        strategy = choose_strategy(global_len, elem_size);
    if (group_ == nullptr && strategy == Strategy::ClientSide)
        strategy = Strategy::InFlight; // a group of one has nothing to shuffle

    const int n_s = desc_.members;
    PADICO_CHECK(local_arg.size() ==
                     client_dist_.local_size(rank_, n_clients_, global_len) *
                         elem_size,
                 "local argument does not match the declared layout");

    auto& proc = orb_->runtime().process();
    proc.clock().advance(kPerInvokeCpu);

    if (group_ != nullptr && checked_) {
        // Collective-invocation agreement: all members of the client group
        // must be issuing the same call (SPMD discipline). Rank 0's view is
        // broadcast; a divergent member fails loudly instead of producing a
        // half-assembled invocation on the server.
        struct Meta {
            std::uint64_t seq;
            std::uint64_t len;
            std::uint64_t op_hash;
        };
        std::uint64_t h = 1469598103934665603ull;
        for (char c : op) h = (h ^ static_cast<unsigned char>(c)) *
                              1099511628211ull;
        Meta mine{next_seq_, global_len, h};
        Meta agreed = mine;
        group_->bcast_bytes(&agreed, sizeof agreed, 0);
        PADICO_CHECK(agreed.seq == mine.seq && agreed.len == mine.len &&
                         agreed.op_hash == mine.op_hash,
                     "mismatched collective invocation across the client "
                     "group (rank " +
                         std::to_string(rank_) + ", op '" + op + "')");
    }

    FragHeader header;
    header.binding = binding_;
    header.seq = next_seq_++;
    header.op = op;
    header.strategy = static_cast<std::uint8_t>(strategy);
    header.global_len = global_len;
    header.elem_size = static_cast<std::uint32_t>(elem_size);
    header.n_clients = static_cast<std::uint32_t>(n_clients_);
    header.client_rank = static_cast<std::uint32_t>(rank_);
    header.client_dist = client_dist_;

    // Per-server fragment lists plus the backing data they slice.
    std::map<int, std::vector<Fragment>> per_server;
    util::Message data = std::move(local_arg);

    switch (strategy) {
    case Strategy::InFlight: {
        const PlanPtr plan = shared_plan(client_dist_, n_clients_,
                                         desc_.server_dist, n_s, global_len);
        for (const auto& f : plan->from(rank_)) per_server[f.dst].push_back(f);
        break;
    }
    case Strategy::ServerSide: {
        const std::size_t elems = data.size() / elem_size;
        if (elems > 0) {
            Fragment f;
            f.src = rank_;
            f.dst = rank_ % n_s;
            f.src_off = 0;
            f.dst_off = 0;
            f.len = elems;
            per_server[f.dst].push_back(f);
        }
        break;
    }
    case Strategy::ClientSide: {
        PADICO_CHECK(group_ != nullptr, "client-side strategy needs a group");
        const PlanPtr plan_ptr = shared_plan(client_dist_, n_clients_,
                                             desc_.server_dist, n_s,
                                             global_len);
        const RedistPlan& plan = *plan_ptr;
        // Staging layout of each client: its owned server blocks in
        // ascending server order.
        auto staging_off = [&](int owner, int server) {
            std::size_t off = 0;
            for (int s : owned_servers(owner, n_clients_, n_s,
                                       desc_.server_dist, global_len)) {
                if (s == server) return off;
                off += desc_.server_dist.local_size(s, n_s, global_len);
            }
            throw UsageError("server not owned by client");
        };
        // Shuffle over the client group's own network. Count first, one
        // CDR stream per destination (alignment is stream-relative).
        std::vector<std::uint32_t> counts(
            static_cast<std::size_t>(n_clients_), 0);
        for (const auto& f : plan.from(rank_))
            ++counts[static_cast<std::size_t>(f.dst % n_clients_)];
        std::vector<corba::cdr::Encoder> enc;
        for (int c = 0; c < n_clients_; ++c) {
            enc.emplace_back(true);
            enc.back().put_u32(counts[static_cast<std::size_t>(c)]);
        }
        for (const auto& f : plan.from(rank_)) {
            const int owner = f.dst % n_clients_;
            auto& e = enc[static_cast<std::size_t>(owner)];
            e.put_u64(staging_off(owner, f.dst) + f.dst_off);
            e.put_u64(f.len);
            e.put_message(data.slice(f.src_off * elem_size,
                                     f.len * elem_size));
        }
        std::vector<util::Message> to_send;
        for (int c = 0; c < n_clients_; ++c)
            to_send.push_back(enc[static_cast<std::size_t>(c)].take());
        auto received = group_->alltoallv_msg(std::move(to_send));

        const auto mine = owned_servers(rank_, n_clients_, n_s,
                                        desc_.server_dist, global_len);
        std::size_t staging_bytes = 0;
        for (int s : mine)
            staging_bytes +=
                desc_.server_dist.local_size(s, n_s, global_len) * elem_size;
        util::ByteBuf staging(staging_bytes);
        for (auto& msg : received) {
            corba::cdr::Decoder dec(std::move(msg));
            const std::uint32_t count = dec.get_u32();
            for (std::uint32_t i = 0; i < count; ++i) {
                const std::uint64_t off = dec.get_u64();
                const std::uint64_t len = dec.get_u64();
                util::Message piece = dec.get_bytes_msg(len * elem_size);
                piece.copy_out(0, staging.data() + off * elem_size,
                               len * elem_size);
                charge_copy(proc, len * elem_size);
            }
        }
        data = util::to_message(std::move(staging));
        // One contiguous fragment per owned server.
        std::size_t off = 0;
        for (int s : mine) {
            const std::size_t block =
                desc_.server_dist.local_size(s, n_s, global_len);
            Fragment f;
            f.src = rank_;
            f.dst = s;
            f.src_off = off;
            f.dst_off = 0;
            f.len = block;
            per_server[s].push_back(f);
            off += block;
        }
        break;
    }
    case Strategy::Auto:
        throw UsageError("unreachable");
    }

    // Result buffer (this rank's block of the distributed result).
    util::ByteBuf result;
    if (opd.result_distributed)
        result.resize(client_dist_.local_size(rank_, n_clients_, global_len) *
                      elem_size);

    const std::vector<int> contacts = gridccm_contacted_servers(
        strategy, client_dist_, n_clients_, rank_, desc_.server_dist, n_s,
        global_len, opd.result_distributed, opd.collective);
    PLOG(debug, "gridccm") << "stub[" << rank_ << "/" << n_clients_ << "] "
                           << op << " seq " << header.seq << " strat "
                           << strategy_name(strategy) << " contacts "
                           << contacts.size();

    std::size_t n_frags = 0;
    for (const auto& [s, fl] : per_server) n_frags += fl.size();
    proc.clock().advance(kPerFragmentCpu *
                         static_cast<SimTime>(std::max<std::size_t>(
                             1, n_frags)));

    static const std::vector<Fragment> kNoFrags;
    auto frags_for = [&](int s) -> const std::vector<Fragment>& {
        auto it = per_server.find(s);
        return it == per_server.end() ? kNoFrags : it->second;
    };

    if (contacts.size() <= 1) {
        for (int s : contacts)
            contact_server(s, header, frags_for(s), data, elem_size,
                           opd.result_distributed ? &result : nullptr);
    } else if (util::caches_enabled()) {
        // Fan out in parallel: all nodes of a parallel component
        // participate in inter-component communication (paper §4.2.1).
        // Fast lane: the persistent pool reuses its workers across
        // invocations instead of a spawn/join per contacted server.
        if (!fanout_) {
            fabric::Process* bound = &proc;
            fanout_ = std::make_unique<osal::TaskPool>(
                [bound] { fabric::Process::bind_to_thread(bound); });
        }
        std::vector<std::function<void()>> tasks;
        tasks.reserve(contacts.size());
        for (int s : contacts) {
            tasks.push_back([&, s] {
                contact_server(s, header, frags_for(s), data, elem_size,
                               opd.result_distributed ? &result : nullptr);
            });
        }
        fanout_->run(std::move(tasks));
    } else {
        std::vector<std::thread> threads;
        osal::CheckedMutex err_mu{lockrank::kScratch, "gridccm.stub.err"};
        std::exception_ptr first_error;
        for (int s : contacts) {
            threads.emplace_back(osal::sched::spawn_thread([&, s] {
                fabric::Process::bind_to_thread(&proc);
                try {
                    contact_server(s, header, frags_for(s), data, elem_size,
                                   opd.result_distributed ? &result
                                                          : nullptr);
                } catch (...) {
                    osal::CheckedLock lk(err_mu);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            }, "gridccm.fanout"));
        }
        for (auto& t : threads) osal::sched::join(t);
        if (first_error) std::rethrow_exception(first_error);
    }

    if (group_ != nullptr && checked_) group_->barrier();

    if (!opd.result_distributed) return util::Message();
    return util::to_message(std::move(result));
}

} // namespace padico::gridccm
