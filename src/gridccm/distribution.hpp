#pragma once
/// \file distribution.hpp
/// Data distributions of IDL sequences over the member nodes of a parallel
/// component, and redistribution plans between a client-side and a
/// server-side distribution (paper §4.2.2: the GridCCM layer "can perform
/// a redistribution of the data on the client side, on the server side or
/// during the communication").
///
/// The current GridCCM prototype distributes 1D sequences (the paper: "the
/// current implementation requires the user type to be an IDL sequence
/// type, that is to say a 1D array"); 2D arrays map to sequences of
/// sequences, which compose out of the 1D machinery.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace padico::gridccm {

/// Half-open interval of global element indices.
struct Interval {
    std::size_t lo = 0;
    std::size_t hi = 0;

    std::size_t size() const noexcept { return hi - lo; }
    bool empty() const noexcept { return hi <= lo; }
    bool operator==(const Interval&) const = default;
};

/// How a sequence of global length L is split over n ranks.
struct Distribution {
    enum class Kind { Block, Cyclic, BlockCyclic, BlockRows };

    Kind kind = Kind::Block;
    std::size_t grain = 1; ///< block size (BlockCyclic) / row width (BlockRows)

    static Distribution block() { return {Kind::Block, 1}; }
    static Distribution cyclic() { return {Kind::Cyclic, 1}; }
    static Distribution block_cyclic(std::size_t grain) {
        PADICO_CHECK(grain >= 1, "block-cyclic grain must be >= 1");
        return {Kind::BlockCyclic, grain};
    }
    /// 2D support (paper §4.2.2: "a 2D array can be mapped to a sequence
    /// of sequences"): a row-major matrix of row width \p cols distributed
    /// by contiguous blocks of WHOLE rows. The sequence length must be a
    /// multiple of \p cols.
    static Distribution block_rows(std::size_t cols) {
        PADICO_CHECK(cols >= 1, "row width must be >= 1");
        return {Kind::BlockRows, cols};
    }

    /// Parse "block", "cyclic", "block-cyclic:<grain>", "block-rows:<cols>".
    static Distribution parse(const std::string& s);
    std::string str() const;

    /// The global intervals owned by \p rank (ascending, non-overlapping).
    /// Concatenated in order they form the rank's local vector.
    std::vector<Interval> intervals(int rank, int nranks,
                                    std::size_t len) const;

    /// Number of local elements of \p rank.
    std::size_t local_size(int rank, int nranks, std::size_t len) const;

    /// Owner rank of global index \p g.
    int owner(std::size_t g, int nranks, std::size_t len) const;

    /// Local offset (within the rank's local vector) of global index \p g,
    /// which must be owned by \p rank.
    std::size_t global_to_local(std::size_t g, int rank, int nranks,
                                std::size_t len) const;

    bool operator==(const Distribution&) const = default;
};

/// One contiguous piece moving from a source rank's local vector to a
/// destination rank's local vector.
struct Fragment {
    int src = 0;        ///< source rank
    int dst = 0;        ///< destination rank
    std::size_t src_off = 0; ///< offset in source local vector
    std::size_t dst_off = 0; ///< offset in destination local vector
    std::size_t len = 0;     ///< elements

    bool operator==(const Fragment&) const = default;
};

/// The full communication matrix of one redistribution.
struct RedistPlan {
    std::size_t len = 0; ///< global sequence length
    int n_src = 0;
    int n_dst = 0;
    std::vector<Fragment> fragments; ///< ordered by (src, src_off)

    /// Fragments sent by one source rank.
    std::vector<Fragment> from(int src_rank) const;
    /// Fragments received by one destination rank.
    std::vector<Fragment> to(int dst_rank) const;
    /// Destination ranks a source rank touches.
    std::vector<int> targets_of(int src_rank) const;

    /// Total elements moved (== len).
    std::size_t total() const;
};

/// Compute the communication matrix from a source to a destination layout.
RedistPlan compute_plan(const Distribution& src_dist, int n_src,
                        const Distribution& dst_dist, int n_dst,
                        std::size_t len);

/// Immutable shared handle onto a redistribution plan.
using PlanPtr = std::shared_ptr<const RedistPlan>;

/// Fast lane: process-wide memoized plans, keyed by
/// (src_dist, n_src, dst_dist, n_dst, len). A plan is pure — it depends
/// only on the key — so every stub, skeleton and strategy chooser asking
/// for the same shape shares ONE computation instead of re-deriving the
/// communication matrix per call. Bypasses the table (computes fresh)
/// when util::caches_enabled() is off.
PlanPtr shared_plan(const Distribution& src_dist, int n_src,
                    const Distribution& dst_dist, int n_dst,
                    std::size_t len);

/// Plan-cache effectiveness counters (process-wide).
struct PlanCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};
PlanCacheStats plan_cache_stats();

/// Drop every memoized plan and zero the counters (benches/tests).
void reset_plan_cache();

} // namespace padico::gridccm
