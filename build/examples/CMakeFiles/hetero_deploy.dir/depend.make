# Empty dependencies file for hetero_deploy.
# This may be replaced when dependencies are built.
