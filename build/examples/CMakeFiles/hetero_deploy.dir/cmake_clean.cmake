file(REMOVE_RECURSE
  "CMakeFiles/hetero_deploy.dir/hetero_deploy.cpp.o"
  "CMakeFiles/hetero_deploy.dir/hetero_deploy.cpp.o.d"
  "hetero_deploy"
  "hetero_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
