file(REMOVE_RECURSE
  "CMakeFiles/code_coupling.dir/code_coupling.cpp.o"
  "CMakeFiles/code_coupling.dir/code_coupling.cpp.o.d"
  "code_coupling"
  "code_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
