# Empty dependencies file for code_coupling.
# This may be replaced when dependencies are built.
