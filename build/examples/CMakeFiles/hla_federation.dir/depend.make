# Empty dependencies file for hla_federation.
# This may be replaced when dependencies are built.
