file(REMOVE_RECURSE
  "CMakeFiles/hla_federation.dir/hla_federation.cpp.o"
  "CMakeFiles/hla_federation.dir/hla_federation.cpp.o.d"
  "hla_federation"
  "hla_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hla_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
