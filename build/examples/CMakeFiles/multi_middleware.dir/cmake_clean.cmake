file(REMOVE_RECURSE
  "CMakeFiles/multi_middleware.dir/multi_middleware.cpp.o"
  "CMakeFiles/multi_middleware.dir/multi_middleware.cpp.o.d"
  "multi_middleware"
  "multi_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
