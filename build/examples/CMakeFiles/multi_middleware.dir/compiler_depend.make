# Empty compiler generated dependencies file for multi_middleware.
# This may be replaced when dependencies are built.
