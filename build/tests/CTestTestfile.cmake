# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_lowlevel[1]_include.cmake")
include("/root/repo/build/tests/test_padicotm[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_corba[1]_include.cmake")
include("/root/repo/build/tests/test_soap[1]_include.cmake")
include("/root/repo/build/tests/test_ccm[1]_include.cmake")
include("/root/repo/build/tests/test_gridccm[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_hla[1]_include.cmake")
