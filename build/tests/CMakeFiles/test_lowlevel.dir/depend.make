# Empty dependencies file for test_lowlevel.
# This may be replaced when dependencies are built.
