file(REMOVE_RECURSE
  "CMakeFiles/test_lowlevel.dir/test_lowlevel.cpp.o"
  "CMakeFiles/test_lowlevel.dir/test_lowlevel.cpp.o.d"
  "test_lowlevel"
  "test_lowlevel.pdb"
  "test_lowlevel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowlevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
