# Empty dependencies file for test_gridccm.
# This may be replaced when dependencies are built.
