file(REMOVE_RECURSE
  "CMakeFiles/test_gridccm.dir/test_gridccm.cpp.o"
  "CMakeFiles/test_gridccm.dir/test_gridccm.cpp.o.d"
  "test_gridccm"
  "test_gridccm.pdb"
  "test_gridccm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gridccm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
