# Empty compiler generated dependencies file for test_hla.
# This may be replaced when dependencies are built.
