file(REMOVE_RECURSE
  "CMakeFiles/test_hla.dir/test_hla.cpp.o"
  "CMakeFiles/test_hla.dir/test_hla.cpp.o.d"
  "test_hla"
  "test_hla.pdb"
  "test_hla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
