# Empty compiler generated dependencies file for test_padicotm.
# This may be replaced when dependencies are built.
