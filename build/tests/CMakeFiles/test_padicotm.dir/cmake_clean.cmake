file(REMOVE_RECURSE
  "CMakeFiles/test_padicotm.dir/test_padicotm.cpp.o"
  "CMakeFiles/test_padicotm.dir/test_padicotm.cpp.o.d"
  "test_padicotm"
  "test_padicotm.pdb"
  "test_padicotm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_padicotm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
