file(REMOVE_RECURSE
  "CMakeFiles/test_soap.dir/test_soap.cpp.o"
  "CMakeFiles/test_soap.dir/test_soap.cpp.o.d"
  "test_soap"
  "test_soap.pdb"
  "test_soap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
