file(REMOVE_RECURSE
  "CMakeFiles/padico_mpi.dir/comm.cpp.o"
  "CMakeFiles/padico_mpi.dir/comm.cpp.o.d"
  "libpadico_mpi.a"
  "libpadico_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padico_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
