# Empty dependencies file for padico_mpi.
# This may be replaced when dependencies are built.
