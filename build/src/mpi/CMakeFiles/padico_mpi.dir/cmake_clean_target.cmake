file(REMOVE_RECURSE
  "libpadico_mpi.a"
)
