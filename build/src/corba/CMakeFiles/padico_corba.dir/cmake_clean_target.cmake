file(REMOVE_RECURSE
  "libpadico_corba.a"
)
