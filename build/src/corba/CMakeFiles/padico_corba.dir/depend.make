# Empty dependencies file for padico_corba.
# This may be replaced when dependencies are built.
