file(REMOVE_RECURSE
  "CMakeFiles/padico_corba.dir/cdr.cpp.o"
  "CMakeFiles/padico_corba.dir/cdr.cpp.o.d"
  "CMakeFiles/padico_corba.dir/module.cpp.o"
  "CMakeFiles/padico_corba.dir/module.cpp.o.d"
  "CMakeFiles/padico_corba.dir/naming.cpp.o"
  "CMakeFiles/padico_corba.dir/naming.cpp.o.d"
  "CMakeFiles/padico_corba.dir/orb.cpp.o"
  "CMakeFiles/padico_corba.dir/orb.cpp.o.d"
  "libpadico_corba.a"
  "libpadico_corba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padico_corba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
