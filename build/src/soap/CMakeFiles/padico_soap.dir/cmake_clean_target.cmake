file(REMOVE_RECURSE
  "libpadico_soap.a"
)
