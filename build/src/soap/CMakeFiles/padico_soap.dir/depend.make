# Empty dependencies file for padico_soap.
# This may be replaced when dependencies are built.
