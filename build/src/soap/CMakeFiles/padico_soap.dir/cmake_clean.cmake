file(REMOVE_RECURSE
  "CMakeFiles/padico_soap.dir/soap.cpp.o"
  "CMakeFiles/padico_soap.dir/soap.cpp.o.d"
  "libpadico_soap.a"
  "libpadico_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padico_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
