
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/grid.cpp" "src/fabric/CMakeFiles/padico_fabric.dir/grid.cpp.o" "gcc" "src/fabric/CMakeFiles/padico_fabric.dir/grid.cpp.o.d"
  "/root/repo/src/fabric/netmodel.cpp" "src/fabric/CMakeFiles/padico_fabric.dir/netmodel.cpp.o" "gcc" "src/fabric/CMakeFiles/padico_fabric.dir/netmodel.cpp.o.d"
  "/root/repo/src/fabric/registry.cpp" "src/fabric/CMakeFiles/padico_fabric.dir/registry.cpp.o" "gcc" "src/fabric/CMakeFiles/padico_fabric.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/padico_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
