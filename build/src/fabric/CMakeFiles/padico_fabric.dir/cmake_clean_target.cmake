file(REMOVE_RECURSE
  "libpadico_fabric.a"
)
