# Empty compiler generated dependencies file for padico_fabric.
# This may be replaced when dependencies are built.
