file(REMOVE_RECURSE
  "CMakeFiles/padico_fabric.dir/grid.cpp.o"
  "CMakeFiles/padico_fabric.dir/grid.cpp.o.d"
  "CMakeFiles/padico_fabric.dir/netmodel.cpp.o"
  "CMakeFiles/padico_fabric.dir/netmodel.cpp.o.d"
  "CMakeFiles/padico_fabric.dir/registry.cpp.o"
  "CMakeFiles/padico_fabric.dir/registry.cpp.o.d"
  "libpadico_fabric.a"
  "libpadico_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padico_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
