file(REMOVE_RECURSE
  "libpadico_padicotm.a"
)
