# Empty compiler generated dependencies file for padico_padicotm.
# This may be replaced when dependencies are built.
