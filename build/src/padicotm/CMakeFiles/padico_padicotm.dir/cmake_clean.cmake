file(REMOVE_RECURSE
  "CMakeFiles/padico_padicotm.dir/circuit.cpp.o"
  "CMakeFiles/padico_padicotm.dir/circuit.cpp.o.d"
  "CMakeFiles/padico_padicotm.dir/engine.cpp.o"
  "CMakeFiles/padico_padicotm.dir/engine.cpp.o.d"
  "CMakeFiles/padico_padicotm.dir/personality.cpp.o"
  "CMakeFiles/padico_padicotm.dir/personality.cpp.o.d"
  "CMakeFiles/padico_padicotm.dir/runtime.cpp.o"
  "CMakeFiles/padico_padicotm.dir/runtime.cpp.o.d"
  "CMakeFiles/padico_padicotm.dir/vlink.cpp.o"
  "CMakeFiles/padico_padicotm.dir/vlink.cpp.o.d"
  "libpadico_padicotm.a"
  "libpadico_padicotm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padico_padicotm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
