file(REMOVE_RECURSE
  "CMakeFiles/padico_sockets.dir/sockets.cpp.o"
  "CMakeFiles/padico_sockets.dir/sockets.cpp.o.d"
  "libpadico_sockets.a"
  "libpadico_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padico_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
