file(REMOVE_RECURSE
  "libpadico_sockets.a"
)
