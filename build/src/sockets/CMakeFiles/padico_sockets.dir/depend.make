# Empty dependencies file for padico_sockets.
# This may be replaced when dependencies are built.
