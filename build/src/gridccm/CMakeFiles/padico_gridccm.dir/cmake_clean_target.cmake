file(REMOVE_RECURSE
  "libpadico_gridccm.a"
)
