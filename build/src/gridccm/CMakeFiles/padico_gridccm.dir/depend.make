# Empty dependencies file for padico_gridccm.
# This may be replaced when dependencies are built.
