file(REMOVE_RECURSE
  "CMakeFiles/padico_gridccm.dir/component.cpp.o"
  "CMakeFiles/padico_gridccm.dir/component.cpp.o.d"
  "CMakeFiles/padico_gridccm.dir/descriptor.cpp.o"
  "CMakeFiles/padico_gridccm.dir/descriptor.cpp.o.d"
  "CMakeFiles/padico_gridccm.dir/distribution.cpp.o"
  "CMakeFiles/padico_gridccm.dir/distribution.cpp.o.d"
  "CMakeFiles/padico_gridccm.dir/skeleton.cpp.o"
  "CMakeFiles/padico_gridccm.dir/skeleton.cpp.o.d"
  "CMakeFiles/padico_gridccm.dir/stub.cpp.o"
  "CMakeFiles/padico_gridccm.dir/stub.cpp.o.d"
  "libpadico_gridccm.a"
  "libpadico_gridccm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padico_gridccm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
