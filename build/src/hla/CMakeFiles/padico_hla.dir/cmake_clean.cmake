file(REMOVE_RECURSE
  "CMakeFiles/padico_hla.dir/hla.cpp.o"
  "CMakeFiles/padico_hla.dir/hla.cpp.o.d"
  "libpadico_hla.a"
  "libpadico_hla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padico_hla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
