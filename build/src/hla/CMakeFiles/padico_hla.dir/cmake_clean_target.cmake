file(REMOVE_RECURSE
  "libpadico_hla.a"
)
