# Empty dependencies file for padico_hla.
# This may be replaced when dependencies are built.
