file(REMOVE_RECURSE
  "CMakeFiles/padico_util.dir/bytes.cpp.o"
  "CMakeFiles/padico_util.dir/bytes.cpp.o.d"
  "CMakeFiles/padico_util.dir/error.cpp.o"
  "CMakeFiles/padico_util.dir/error.cpp.o.d"
  "CMakeFiles/padico_util.dir/log.cpp.o"
  "CMakeFiles/padico_util.dir/log.cpp.o.d"
  "CMakeFiles/padico_util.dir/simtime.cpp.o"
  "CMakeFiles/padico_util.dir/simtime.cpp.o.d"
  "CMakeFiles/padico_util.dir/stats.cpp.o"
  "CMakeFiles/padico_util.dir/stats.cpp.o.d"
  "CMakeFiles/padico_util.dir/strings.cpp.o"
  "CMakeFiles/padico_util.dir/strings.cpp.o.d"
  "CMakeFiles/padico_util.dir/xml.cpp.o"
  "CMakeFiles/padico_util.dir/xml.cpp.o.d"
  "libpadico_util.a"
  "libpadico_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padico_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
