# Empty dependencies file for padico_util.
# This may be replaced when dependencies are built.
