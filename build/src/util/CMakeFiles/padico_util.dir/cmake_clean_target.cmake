file(REMOVE_RECURSE
  "libpadico_util.a"
)
