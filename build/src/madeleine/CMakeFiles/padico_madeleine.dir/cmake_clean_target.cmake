file(REMOVE_RECURSE
  "libpadico_madeleine.a"
)
