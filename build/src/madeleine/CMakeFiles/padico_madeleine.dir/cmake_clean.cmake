file(REMOVE_RECURSE
  "CMakeFiles/padico_madeleine.dir/madeleine.cpp.o"
  "CMakeFiles/padico_madeleine.dir/madeleine.cpp.o.d"
  "libpadico_madeleine.a"
  "libpadico_madeleine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padico_madeleine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
