# Empty compiler generated dependencies file for padico_madeleine.
# This may be replaced when dependencies are built.
