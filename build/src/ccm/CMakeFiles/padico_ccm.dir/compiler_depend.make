# Empty compiler generated dependencies file for padico_ccm.
# This may be replaced when dependencies are built.
