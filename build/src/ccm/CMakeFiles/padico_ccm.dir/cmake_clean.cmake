file(REMOVE_RECURSE
  "CMakeFiles/padico_ccm.dir/assembly.cpp.o"
  "CMakeFiles/padico_ccm.dir/assembly.cpp.o.d"
  "CMakeFiles/padico_ccm.dir/component.cpp.o"
  "CMakeFiles/padico_ccm.dir/component.cpp.o.d"
  "CMakeFiles/padico_ccm.dir/container.cpp.o"
  "CMakeFiles/padico_ccm.dir/container.cpp.o.d"
  "CMakeFiles/padico_ccm.dir/deployer.cpp.o"
  "CMakeFiles/padico_ccm.dir/deployer.cpp.o.d"
  "libpadico_ccm.a"
  "libpadico_ccm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padico_ccm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
