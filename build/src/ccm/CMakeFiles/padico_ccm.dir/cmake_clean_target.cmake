file(REMOVE_RECURSE
  "libpadico_ccm.a"
)
