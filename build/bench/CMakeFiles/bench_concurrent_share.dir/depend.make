# Empty dependencies file for bench_concurrent_share.
# This may be replaced when dependencies are built.
