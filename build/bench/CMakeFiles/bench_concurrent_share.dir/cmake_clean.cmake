file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_share.dir/bench_concurrent_share.cpp.o"
  "CMakeFiles/bench_concurrent_share.dir/bench_concurrent_share.cpp.o.d"
  "bench_concurrent_share"
  "bench_concurrent_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
