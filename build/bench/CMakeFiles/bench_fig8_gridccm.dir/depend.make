# Empty dependencies file for bench_fig8_gridccm.
# This may be replaced when dependencies are built.
