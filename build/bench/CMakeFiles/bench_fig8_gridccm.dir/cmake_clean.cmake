file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_gridccm.dir/bench_fig8_gridccm.cpp.o"
  "CMakeFiles/bench_fig8_gridccm.dir/bench_fig8_gridccm.cpp.o.d"
  "bench_fig8_gridccm"
  "bench_fig8_gridccm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_gridccm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
