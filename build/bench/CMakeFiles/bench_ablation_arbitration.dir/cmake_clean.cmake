file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_arbitration.dir/bench_ablation_arbitration.cpp.o"
  "CMakeFiles/bench_ablation_arbitration.dir/bench_ablation_arbitration.cpp.o.d"
  "bench_ablation_arbitration"
  "bench_ablation_arbitration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_arbitration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
