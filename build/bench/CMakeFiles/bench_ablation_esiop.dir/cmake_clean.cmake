file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_esiop.dir/bench_ablation_esiop.cpp.o"
  "CMakeFiles/bench_ablation_esiop.dir/bench_ablation_esiop.cpp.o.d"
  "bench_ablation_esiop"
  "bench_ablation_esiop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_esiop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
