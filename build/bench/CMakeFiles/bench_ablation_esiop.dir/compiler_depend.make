# Empty compiler generated dependencies file for bench_ablation_esiop.
# This may be replaced when dependencies are built.
