
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_esiop.cpp" "bench/CMakeFiles/bench_ablation_esiop.dir/bench_ablation_esiop.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_esiop.dir/bench_ablation_esiop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corba/CMakeFiles/padico_corba.dir/DependInfo.cmake"
  "/root/repo/build/src/padicotm/CMakeFiles/padico_padicotm.dir/DependInfo.cmake"
  "/root/repo/build/src/madeleine/CMakeFiles/padico_madeleine.dir/DependInfo.cmake"
  "/root/repo/build/src/sockets/CMakeFiles/padico_sockets.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/padico_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/padico_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
