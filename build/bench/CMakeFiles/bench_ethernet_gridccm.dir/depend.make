# Empty dependencies file for bench_ethernet_gridccm.
# This may be replaced when dependencies are built.
