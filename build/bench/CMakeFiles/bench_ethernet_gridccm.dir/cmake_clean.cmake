file(REMOVE_RECURSE
  "CMakeFiles/bench_ethernet_gridccm.dir/bench_ethernet_gridccm.cpp.o"
  "CMakeFiles/bench_ethernet_gridccm.dir/bench_ethernet_gridccm.cpp.o.d"
  "bench_ethernet_gridccm"
  "bench_ethernet_gridccm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ethernet_gridccm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
